//! Visitor-based parameter traversal.
//!
//! The trainer needs to walk every dense parameter of a model three ways:
//! apply an SGD step, export gradients into a flat buffer (to AllReduce
//! or push to a dense PS), and import averaged gradients back. A visitor
//! keeps the layers ignorant of the training topology while avoiding any
//! flattening copies in the common local-update path.

/// Visits `(param, grad)` slice pairs of a model in a fixed order.
pub trait ParamVisitor {
    /// Called once per parameter tensor with its gradient buffer.
    fn visit(&mut self, param: &mut [f32], grad: &mut [f32]);
}

/// Implemented by anything holding trainable dense parameters.
pub trait HasParams {
    /// Walks every `(param, grad)` pair in a deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor);

    /// Total number of dense scalar parameters.
    fn n_params(&mut self) -> usize {
        let mut counter = CountParams(0);
        self.visit_params(&mut counter);
        counter.0
    }

    /// Zeroes every gradient buffer.
    fn zero_grads(&mut self) {
        struct Zero;
        impl ParamVisitor for Zero {
            fn visit(&mut self, _param: &mut [f32], grad: &mut [f32]) {
                grad.iter_mut().for_each(|g| *g = 0.0);
            }
        }
        self.visit_params(&mut Zero);
    }
}

struct CountParams(usize);

impl ParamVisitor for CountParams {
    fn visit(&mut self, param: &mut [f32], _grad: &mut [f32]) {
        self.0 += param.len();
    }
}

/// A flat gradient buffer used for cross-worker reduction: `export`
/// copies a model's gradients out in visit order, `import` writes a
/// (reduced) buffer back into the model's gradient slots.
#[derive(Clone, Debug, Default)]
pub struct FlatGrads {
    buf: Vec<f32>,
}

impl FlatGrads {
    /// An empty buffer.
    pub fn new() -> Self {
        FlatGrads::default()
    }

    /// The flat gradient values, in visit order.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// The flat gradient values, mutably (e.g. to average in place).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }

    /// Copies the model's gradients into this buffer (resizing it).
    pub fn export_from(&mut self, model: &mut dyn HasParams) {
        self.buf.clear();
        struct Export<'a>(&'a mut Vec<f32>);
        impl ParamVisitor for Export<'_> {
            fn visit(&mut self, _param: &mut [f32], grad: &mut [f32]) {
                self.0.extend_from_slice(grad);
            }
        }
        model.visit_params(&mut Export(&mut self.buf));
    }

    /// Writes this buffer back into the model's gradient slots.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the model's parameter
    /// count.
    pub fn import_into(&self, model: &mut dyn HasParams) {
        struct Import<'a> {
            buf: &'a [f32],
            offset: usize,
        }
        impl ParamVisitor for Import<'_> {
            fn visit(&mut self, _param: &mut [f32], grad: &mut [f32]) {
                let end = self.offset + grad.len();
                grad.copy_from_slice(&self.buf[self.offset..end]);
                self.offset = end;
            }
        }
        assert_eq!(
            self.buf.len(),
            model.n_params(),
            "flat gradient length mismatch"
        );
        let mut importer = Import {
            buf: &self.buf,
            offset: 0,
        };
        model.visit_params(&mut importer);
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on length mismatch (unless `self` is empty, in which case it
    /// adopts `other`'s length).
    pub fn accumulate(&mut self, other: &FlatGrads) {
        if self.buf.is_empty() {
            self.buf = other.buf.clone();
            return;
        }
        assert_eq!(
            self.buf.len(),
            other.buf.len(),
            "flat gradient length mismatch"
        );
        for (a, &b) in self.buf.iter_mut().zip(&other.buf) {
            *a += b;
        }
    }

    /// Scales every element (e.g. by `1/N` after summing N workers).
    pub fn scale(&mut self, factor: f32) {
        self.buf.iter_mut().for_each(|v| *v *= factor);
    }

    /// Number of scalars in the buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A flat *parameter* buffer: `export` copies a model's parameters out in
/// visit order, `import` overwrites the model's parameters from a buffer.
/// Used by the dense-PS baselines, whose workers pull full parameter
/// vectors from the server every iteration.
#[derive(Clone, Debug, Default)]
pub struct FlatParams {
    buf: Vec<f32>,
}

impl FlatParams {
    /// An empty buffer.
    pub fn new() -> Self {
        FlatParams::default()
    }

    /// Wraps an existing flat vector.
    pub fn from_vec(buf: Vec<f32>) -> Self {
        FlatParams { buf }
    }

    /// The flat parameter values, in visit order.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// Consumes the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.buf
    }

    /// Copies the model's parameters into this buffer (resizing it).
    pub fn export_from(&mut self, model: &mut dyn HasParams) {
        self.buf.clear();
        struct Export<'a>(&'a mut Vec<f32>);
        impl ParamVisitor for Export<'_> {
            fn visit(&mut self, param: &mut [f32], _grad: &mut [f32]) {
                self.0.extend_from_slice(param);
            }
        }
        model.visit_params(&mut Export(&mut self.buf));
    }

    /// Overwrites the model's parameters from this buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the model's parameter
    /// count.
    pub fn import_into(&self, model: &mut dyn HasParams) {
        assert_eq!(
            self.buf.len(),
            model.n_params(),
            "flat parameter length mismatch"
        );
        struct Import<'a> {
            buf: &'a [f32],
            offset: usize,
        }
        impl ParamVisitor for Import<'_> {
            fn visit(&mut self, param: &mut [f32], _grad: &mut [f32]) {
                let end = self.offset + param.len();
                param.copy_from_slice(&self.buf[self.offset..end]);
                self.offset = end;
            }
        }
        let mut importer = Import {
            buf: &self.buf,
            offset: 0,
        };
        model.visit_params(&mut importer);
    }

    /// Number of scalars in the buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoTensors {
        a: Vec<f32>,
        ga: Vec<f32>,
        b: Vec<f32>,
        gb: Vec<f32>,
    }

    impl TwoTensors {
        fn new() -> Self {
            TwoTensors {
                a: vec![1.0, 2.0],
                ga: vec![0.1, 0.2],
                b: vec![3.0, 4.0, 5.0],
                gb: vec![0.3, 0.4, 0.5],
            }
        }
    }

    impl HasParams for TwoTensors {
        fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
            v.visit(&mut self.a, &mut self.ga);
            v.visit(&mut self.b, &mut self.gb);
        }
    }

    #[test]
    fn n_params_counts_all_tensors() {
        assert_eq!(TwoTensors::new().n_params(), 5);
    }

    #[test]
    fn zero_grads_clears_only_grads() {
        let mut m = TwoTensors::new();
        m.zero_grads();
        assert_eq!(m.ga, vec![0.0, 0.0]);
        assert_eq!(m.gb, vec![0.0, 0.0, 0.0]);
        assert_eq!(m.a, vec![1.0, 2.0]);
    }

    #[test]
    fn export_import_round_trip() {
        let mut m = TwoTensors::new();
        let mut flat = FlatGrads::new();
        flat.export_from(&mut m);
        assert_eq!(flat.as_slice(), &[0.1, 0.2, 0.3, 0.4, 0.5]);

        flat.scale(2.0);
        flat.import_into(&mut m);
        assert_eq!(m.ga, vec![0.2, 0.4]);
        assert_eq!(m.gb, vec![0.6, 0.8, 1.0]);
    }

    #[test]
    fn accumulate_and_scale_model_averaging() {
        let mut m = TwoTensors::new();
        let mut a = FlatGrads::new();
        a.export_from(&mut m);
        let mut sum = FlatGrads::new();
        sum.accumulate(&a);
        sum.accumulate(&a);
        sum.scale(0.5);
        assert_eq!(sum.as_slice(), a.as_slice());
        assert_eq!(sum.len(), 5);
        assert!(!sum.is_empty());
    }

    #[test]
    fn flat_params_round_trip() {
        let mut m = TwoTensors::new();
        let mut p = FlatParams::new();
        p.export_from(&mut m);
        assert_eq!(p.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());

        let replacement = FlatParams::from_vec(vec![9.0, 8.0, 7.0, 6.0, 5.0]);
        replacement.import_into(&mut m);
        assert_eq!(m.a, vec![9.0, 8.0]);
        assert_eq!(m.b, vec![7.0, 6.0, 5.0]);
        assert_eq!(replacement.into_vec().len(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn flat_params_wrong_length_panics() {
        let mut m = TwoTensors::new();
        FlatParams::from_vec(vec![0.0; 2]).import_into(&mut m);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn import_wrong_length_panics() {
        let mut m = TwoTensors::new();
        let mut flat = FlatGrads::new();
        flat.export_from(&mut m);
        flat.as_mut_slice(); // no-op, keep length
        let short = FlatGrads { buf: vec![0.0; 3] };
        short.import_into(&mut m);
    }
}
