//! Optimisers. The paper's experiments use plain SGD (§5), which is also
//! what the HET server applies to evicted embedding gradients, so SGD is
//! the only optimiser the reproduction needs. It is written as a
//! `ParamVisitor` so one `visit_params` walk applies the whole step.

use crate::params::{HasParams, ParamVisitor};

/// Plain SGD with an optional L2 weight decay.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// L2 regularisation coefficient (0 disables it).
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Applies one step to every parameter of `model` and zeroes the
    /// gradients afterwards.
    pub fn step(&self, model: &mut dyn HasParams) {
        struct Step(Sgd);
        impl ParamVisitor for Step {
            fn visit(&mut self, param: &mut [f32], grad: &mut [f32]) {
                let Sgd { lr, weight_decay } = self.0;
                for (p, g) in param.iter_mut().zip(grad.iter_mut()) {
                    *p -= lr * (*g + weight_decay * *p);
                    *g = 0.0;
                }
            }
        }
        model.visit_params(&mut Step(*self));
    }

    /// Applies one step to a single dense vector (used by the PS server
    /// for embedding rows).
    pub fn step_vec(&self, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), grad.len());
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneTensor {
        p: Vec<f32>,
        g: Vec<f32>,
    }

    impl HasParams for OneTensor {
        fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
            v.visit(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn step_moves_against_gradient_and_clears_it() {
        let mut m = OneTensor {
            p: vec![1.0, 2.0],
            g: vec![0.5, -0.5],
        };
        Sgd::new(0.1).step(&mut m);
        assert!((m.p[0] - 0.95).abs() < 1e-7);
        assert!((m.p[1] - 2.05).abs() < 1e-7);
        assert_eq!(m.g, vec![0.0, 0.0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut m = OneTensor {
            p: vec![1.0],
            g: vec![0.0],
        };
        let opt = Sgd {
            lr: 0.1,
            weight_decay: 0.1,
        };
        opt.step(&mut m);
        assert!((m.p[0] - 0.99).abs() < 1e-7);
    }

    #[test]
    fn step_vec_matches_step() {
        let mut p = vec![1.0f32, -1.0];
        Sgd::new(0.5).step_vec(&mut p, &[2.0, 2.0]);
        assert_eq!(p, vec![0.0, -2.0]);
    }

    #[test]
    fn minimises_a_quadratic() {
        // f(p) = (p-3)^2, grad = 2(p-3); SGD should converge to 3.
        let mut m = OneTensor {
            p: vec![0.0],
            g: vec![0.0],
        };
        for _ in 0..200 {
            m.g[0] = 2.0 * (m.p[0] - 3.0);
            Sgd::new(0.1).step(&mut m);
        }
        assert!((m.p[0] - 3.0).abs() < 1e-4);
    }
}
