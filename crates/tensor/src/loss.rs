//! Losses: binary cross-entropy with logits (CTR models) and softmax
//! cross-entropy (GNN node classification).
//!
//! Both return the mean loss over the batch together with the gradient
//! w.r.t. the logits, already divided by the batch size, so the models
//! can feed the gradient straight into `backward`.

use crate::activation::sigmoid;
use crate::matrix::Matrix;

/// Mean binary cross-entropy over a batch of logits with {0,1} labels.
/// Returns `(loss, dlogits)`.
///
/// # Panics
/// Panics if shapes disagree or `logits` is not a column.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f32, Matrix) {
    assert_eq!(logits.cols(), 1, "bce expects a (batch x 1) logit column");
    assert_eq!(logits.rows(), labels.len(), "label count must match batch");
    let n = labels.len().max(1) as f32;
    let mut grad = Matrix::zeros(logits.rows(), 1);
    let mut loss = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        let z = logits.get(i, 0);
        // log(1 + e^{-|z|}) + max(z,0) - z*y, the stable BCE-with-logits.
        let max_term = z.max(0.0);
        loss += (max_term - z * y + (1.0 + (-z.abs()).exp()).ln()) as f64;
        grad.set(i, 0, (sigmoid(z) - y) / n);
    }
    ((loss / n as f64) as f32, grad)
}

/// Mean softmax cross-entropy over a batch of `(batch × classes)` logits
/// with integer class labels. Returns `(loss, dlogits)`.
///
/// # Panics
/// Panics on shape mismatch or an out-of-range label.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "label count must match batch");
    let classes = logits.cols();
    let n = labels.len().max(1) as f32;
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_sum = max + sum_exp.ln();
        loss += (log_sum - row[y]) as f64;
        let grow = grad.row_mut(i);
        for (c, g) in grow.iter_mut().enumerate() {
            let p = (row[c] - log_sum).exp();
            *g = (p - if c == y { 1.0 } else { 0.0 }) / n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Batch accuracy of argmax predictions against integer labels.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, &y)| {
            let row = logits.row(*i);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            argmax == y
        })
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_at_zero_logit_is_ln2() {
        let logits = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &[0.0, 1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        // grad = (sigmoid(0) - y)/n = (0.5 - y)/2
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((grad.get(1, 0) + 0.25).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let z0 = 0.7f32;
        let labels = [1.0f32];
        let eps = 1e-3;
        let lp = bce_with_logits(&Matrix::from_vec(1, 1, vec![z0 + eps]), &labels).0;
        let lm = bce_with_logits(&Matrix::from_vec(1, 1, vec![z0 - eps]), &labels).0;
        let num = (lp - lm) / (2.0 * eps);
        let (_, grad) = bce_with_logits(&Matrix::from_vec(1, 1, vec![z0]), &labels);
        assert!((num - grad.get(0, 0)).abs() < 1e-3);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let logits = Matrix::from_vec(2, 1, vec![60.0, -60.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(loss < 1e-6, "confident correct predictions have ~0 loss");
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softmax_ce_uniform_logits() {
        let logits = Matrix::zeros(1, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // p = 0.25 everywhere; grad = p - onehot.
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((grad.get(0, 2) + 0.75).abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_difference() {
        let base = vec![0.3f32, -0.2, 0.9];
        let labels = [1usize];
        let eps = 1e-3f32;
        let (_, grad) = softmax_cross_entropy(&Matrix::from_vec(1, 3, base.clone()), &labels);
        for c in 0..3 {
            let mut p = base.clone();
            p[c] += eps;
            let lp = softmax_cross_entropy(&Matrix::from_vec(1, 3, p), &labels).0;
            let mut m = base.clone();
            m[c] -= eps;
            let lm = softmax_cross_entropy(&Matrix::from_vec(1, 3, m), &labels).0;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.get(0, c)).abs() < 1e-3, "class {c}");
        }
    }

    #[test]
    fn softmax_ce_stable_for_large_logits() {
        let logits = Matrix::from_vec(1, 3, vec![1000.0, 0.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn softmax_ce_rejects_bad_label() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }
}
