//! Minimal CPU tensor/NN substrate for the HET reproduction.
//!
//! The original HET builds on the Hetu DL runtime (C++/CUDA). The trainer
//! only needs the runtime for three things: correct forward/backward math
//! for the dense parts of embedding models, an SGD update, and a FLOP
//! count for the simulated-compute cost model. This crate provides
//! exactly that: row-major `Matrix` math, `Linear`/`Mlp` layers, the
//! Deep&Cross `CrossLayer`, the factorization-machine interaction layer,
//! logistic and softmax losses, and visitor-based parameter traversal
//! (used by the trainer for SGD and gradient AllReduce).
//!
//! All layers store the activations they need for backward, so the usage
//! contract is the usual one: `forward` then `backward` on the same
//! instance, one batch at a time (each simulated worker owns its own
//! model replica, so no sharing is needed).

#![warn(missing_docs)]

pub mod activation;
pub mod cross;
pub mod fm;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod params;

pub use cross::CrossLayer;
pub use fm::FmInteraction;
pub use layers::{Linear, Mlp};
pub use matrix::Matrix;
pub use optim::Sgd;
pub use params::{FlatGrads, FlatParams, HasParams, ParamVisitor};
