//! Dense layers: `Linear` (affine) and `Mlp` (stack of Linear + ReLU).

use crate::activation::{relu_backward, relu_inplace};
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{HasParams, ParamVisitor};
use het_rng::Rng;

/// An affine layer `y = x W + b` with gradient accumulation.
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    last_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            w: xavier_uniform(rng, in_dim, out_dim),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            last_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Immutable view of the weights (for tests/inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Forward pass; stores the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        self.last_input = Some(x.clone());
        y
    }

    /// Inference-only forward pass; does not store activations.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass: accumulates `gW += xᵀ dy`, `gb += Σ_rows dy` and
    /// returns `dx = dy Wᵀ`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .last_input
            .as_ref()
            .expect("Linear::backward called before forward");
        let gw = x.matmul_tn(dy);
        self.gw.axpy(1.0, &gw);
        for (g, d) in self.gb.iter_mut().zip(dy.col_sums()) {
            *g += d;
        }
        dy.matmul_nt(&self.w)
    }

    /// Forward+backward FLOPs per batch of `batch` examples (three
    /// matmuls of the same size).
    pub fn flops(&self, batch: usize) -> f64 {
        3.0 * Matrix::matmul_flops(batch, self.in_dim(), self.out_dim())
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(self.w.as_mut_slice(), self.gw.as_mut_slice());
        v.visit(&mut self.b, &mut self.gb);
    }
}

/// A multi-layer perceptron: Linear layers with ReLU between them (no
/// activation after the final layer, which usually feeds a loss).
pub struct Mlp {
    layers: Vec<Linear>,
    masks: Vec<Matrix>,
}

impl Mlp {
    /// Creates an MLP given the full dimension chain, e.g.
    /// `[in, hidden, hidden, out]`.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new<R: Rng>(rng: &mut R, dims: &[usize]) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, w[0], w[1]))
            .collect();
        Mlp {
            layers,
            masks: Vec::new(),
        }
    }

    /// Number of Linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Forward pass, storing ReLU masks for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.masks.clear();
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                self.masks.push(relu_inplace(&mut h));
            }
        }
        h
    }

    /// Inference-only forward pass.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_inference(&h);
            if i + 1 < n {
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        h
    }

    /// Backward pass; returns the gradient w.r.t. the MLP input. The mask
    /// stored for layer `i`'s output is applied when the gradient crosses
    /// that activation on the way down.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut g = dy.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            g = layer.backward(&g);
            if i > 0 {
                relu_backward(&mut g, &self.masks[i - 1]);
            }
        }
        g
    }

    /// Forward+backward FLOPs per batch.
    pub fn flops(&self, batch: usize) -> f64 {
        self.layers.iter().map(|l| l.flops(batch)).sum()
    }
}

impl HasParams for Mlp {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        for layer in &mut self.layers {
            layer.visit_params(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FlatGrads;
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;

    /// Finite-difference check of Linear gradients w.r.t. both the input
    /// and the weights, using the scalar loss `L = Σ y`.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);

        let y = layer.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        layer.zero_grads();
        let dx = layer.backward(&dy);

        let eps = 1e-3f32;
        // d(Σy)/dx via finite differences.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fp: f32 = layer.forward_inference(&xp).as_slice().iter().sum();
                let fm: f32 = layer.forward_inference(&xm).as_slice().iter().sum();
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-2,
                    "dx[{r},{c}]: numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }

        // d(Σy)/dW via finite differences, compared against gw.
        let mut flat = FlatGrads::new();
        flat.export_from(&mut layer);
        // First 6 entries of the flat buffer are gW (3x2 row-major).
        let in_dim = 3;
        let out_dim = 2;
        for i in 0..in_dim {
            for j in 0..out_dim {
                let orig = layer.w.get(i, j);
                layer.w.set(i, j, orig + eps);
                let fp: f32 = layer.forward_inference(&x).as_slice().iter().sum();
                layer.w.set(i, j, orig - eps);
                let fm: f32 = layer.forward_inference(&x).as_slice().iter().sum();
                layer.w.set(i, j, orig);
                let num = (fp - fm) / (2.0 * eps);
                let analytic = flat.as_slice()[i * out_dim + j];
                assert!(
                    (num - analytic).abs() < 1e-2,
                    "gW[{i},{j}]: numeric {num} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&mut rng, &[4, 8, 1]);
        let x = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32 - 6.0) / 4.0).collect());

        let y = mlp.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows()]);
        mlp.zero_grads();
        let dx = mlp.backward(&dy);

        let eps = 1e-3f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fp: f32 = mlp.forward_inference(&xp).as_slice().iter().sum();
                let fm: f32 = mlp.forward_inference(&xm).as_slice().iter().sum();
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 2e-2,
                    "dx[{r},{c}]: numeric {num} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&mut rng, &[5, 7, 3]);
        let x = Matrix::from_vec(2, 5, (0..10).map(|i| i as f32 * 0.1 - 0.5).collect());
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn mlp_shape_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[16, 32, 8, 1]);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.out_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_with_one_dim_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Mlp::new(&mut rng, &[16]);
    }

    #[test]
    fn flops_positive_and_additive() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[16, 32, 1]);
        let f = mlp.flops(128);
        let expect = 3.0 * (Matrix::matmul_flops(128, 16, 32) + Matrix::matmul_flops(128, 32, 1));
        assert_eq!(f, expect);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&mut rng, &[4, 3, 2]);
        // (4*3 + 3) + (3*2 + 2) = 15 + 8 = 23
        assert_eq!(mlp.n_params(), 23);
    }
}
