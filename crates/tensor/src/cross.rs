//! The Deep&Cross Network cross layer (Wang et al., ADKDD'17), used by
//! the paper's DCN workload.
//!
//! One layer computes, per example, `y = x0 · (xlᵀ w) + b + xl`, i.e. an
//! explicit bounded-degree feature cross with a residual connection. The
//! parameters are a weight vector and a bias vector of the input width.

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{HasParams, ParamVisitor};
use het_rng::Rng;

/// One cross layer `y = x0 ⊙ (xl·w) + b + xl`.
pub struct CrossLayer {
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    last_x0: Option<Matrix>,
    last_xl: Option<Matrix>,
}

impl CrossLayer {
    /// Creates a cross layer of width `dim`.
    pub fn new<R: Rng>(rng: &mut R, dim: usize) -> Self {
        let w = xavier_uniform(rng, dim, 1).as_slice().to_vec();
        CrossLayer {
            w,
            b: vec![0.0; dim],
            gw: vec![0.0; dim],
            gb: vec![0.0; dim],
            last_x0: None,
            last_xl: None,
        }
    }

    /// Layer width.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Forward pass. `x0` is the network input, `xl` the previous cross
    /// output; both `(batch × dim)`.
    pub fn forward(&mut self, x0: &Matrix, xl: &Matrix) -> Matrix {
        self.forward_impl(x0, xl, true)
    }

    /// Inference-only forward pass (no activation storage).
    pub fn forward_inference(&self, x0: &Matrix, xl: &Matrix) -> Matrix {
        assert_eq!(x0.cols(), self.dim(), "x0 width must equal layer dim");
        assert_eq!(xl.cols(), self.dim(), "xl width must equal layer dim");
        let mut y = Matrix::zeros(x0.rows(), self.dim());
        for r in 0..x0.rows() {
            let s: f32 = xl.row(r).iter().zip(&self.w).map(|(&x, &w)| x * w).sum();
            let yr = y.row_mut(r);
            for ((o, &x0v), (&bv, &xlv)) in yr
                .iter_mut()
                .zip(x0.row(r))
                .zip(self.b.iter().zip(xl.row(r)))
            {
                *o = x0v * s + bv + xlv;
            }
        }
        y
    }

    fn forward_impl(&mut self, x0: &Matrix, xl: &Matrix, store: bool) -> Matrix {
        let y = self.forward_inference(x0, xl);
        if store {
            self.last_x0 = Some(x0.clone());
            self.last_xl = Some(xl.clone());
        }
        y
    }

    /// Backward pass: returns `(dx0, dxl)` and accumulates `gw`, `gb`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> (Matrix, Matrix) {
        let x0 = self
            .last_x0
            .as_ref()
            .expect("CrossLayer::backward before forward");
        let xl = self
            .last_xl
            .as_ref()
            .expect("CrossLayer::backward before forward");
        let d = self.dim();
        let mut dx0 = Matrix::zeros(dy.rows(), d);
        let mut dxl = Matrix::zeros(dy.rows(), d);
        for r in 0..dy.rows() {
            let dy_r = dy.row(r);
            let x0_r = x0.row(r);
            let xl_r = xl.row(r);
            let s: f32 = xl_r.iter().zip(&self.w).map(|(&x, &w)| x * w).sum();
            let dy_dot_x0: f32 = dy_r.iter().zip(x0_r).map(|(&a, &b)| a * b).sum();
            for j in 0..d {
                dx0.row_mut(r)[j] = dy_r[j] * s;
                dxl.row_mut(r)[j] = dy_r[j] + self.w[j] * dy_dot_x0;
                self.gw[j] += dy_dot_x0 * xl_r[j];
                self.gb[j] += dy_r[j];
            }
        }
        (dx0, dxl)
    }

    /// Forward+backward FLOPs per batch of `batch` examples.
    pub fn flops(&self, batch: usize) -> f64 {
        // ~6 ops per element forward, ~8 backward.
        14.0 * batch as f64 * self.dim() as f64
    }
}

impl HasParams for CrossLayer {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(&mut self.w, &mut self.gw);
        v.visit(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;

    fn scalar_loss(layer: &CrossLayer, x0: &Matrix, xl: &Matrix) -> f32 {
        layer.forward_inference(x0, xl).as_slice().iter().sum()
    }

    #[test]
    fn forward_matches_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = CrossLayer::new(&mut rng, 2);
        layer.w = vec![1.0, 2.0];
        layer.b = vec![0.5, -0.5];
        let x0 = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let xl = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        // s = 2*1 + 4*2 = 10; y = x0*10 + b + xl = [10+0.5+2, 30-0.5+4]
        let y = layer.forward(&x0, &xl);
        assert_eq!(y.as_slice(), &[12.5, 33.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut layer = CrossLayer::new(&mut rng, 3);
        let x0 = Matrix::from_vec(2, 3, vec![0.3, -0.5, 0.8, 1.1, 0.2, -0.4]);
        let xl = Matrix::from_vec(2, 3, vec![0.6, 0.1, -0.9, -0.2, 0.7, 0.5]);

        let y = layer.forward(&x0, &xl);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; 6]);
        layer.zero_grads();
        let (dx0, dxl) = layer.backward(&dy);

        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                // dx0
                let mut p = x0.clone();
                p.set(r, c, x0.get(r, c) + eps);
                let mut m2 = x0.clone();
                m2.set(r, c, x0.get(r, c) - eps);
                let num =
                    (scalar_loss(&layer, &p, &xl) - scalar_loss(&layer, &m2, &xl)) / (2.0 * eps);
                assert!((num - dx0.get(r, c)).abs() < 1e-2, "dx0[{r},{c}]");
                // dxl
                let mut p = xl.clone();
                p.set(r, c, xl.get(r, c) + eps);
                let mut m2 = xl.clone();
                m2.set(r, c, xl.get(r, c) - eps);
                let num =
                    (scalar_loss(&layer, &x0, &p) - scalar_loss(&layer, &x0, &m2)) / (2.0 * eps);
                assert!((num - dxl.get(r, c)).abs() < 1e-2, "dxl[{r},{c}]");
            }
        }

        // Weight gradient.
        for j in 0..3 {
            let orig = layer.w[j];
            layer.w[j] = orig + eps;
            let lp = scalar_loss(&layer, &x0, &xl);
            layer.w[j] = orig - eps;
            let lm = scalar_loss(&layer, &x0, &xl);
            layer.w[j] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - layer.gw[j]).abs() < 1e-2,
                "gw[{j}]: {num} vs {}",
                layer.gw[j]
            );
        }
    }

    #[test]
    fn residual_passes_through_at_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = CrossLayer::new(&mut rng, 2);
        layer.w = vec![0.0, 0.0];
        layer.b = vec![0.0, 0.0];
        let x0 = Matrix::from_vec(1, 2, vec![5.0, 6.0]);
        let xl = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        assert_eq!(layer.forward(&x0, &xl).as_slice(), xl.as_slice());
    }

    #[test]
    fn param_count_is_two_vectors() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = CrossLayer::new(&mut rng, 8);
        assert_eq!(layer.n_params(), 16);
        assert!(layer.flops(128) > 0.0);
    }
}
