//! Row-major f32 matrices and the handful of BLAS-level operations the
//! embedding models need.
//!
//! The batch sizes and layer widths in the reproduction are small
//! (batch 128, hidden ≤ 512), so straightforward loop nests are fast
//! enough; the inner loops are written so LLVM can vectorise them
//! (contiguous slices, no bounds checks in the hot path via chunking).

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Fills the matrix with zeros, keeping its allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self @ rhs` — matrix product `(m×k) @ (k×n) = (m×n)`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must match");
        let (m, n) = (self.rows, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // i-k-j order: the inner loop runs over contiguous memory in both
        // `rhs` and `out`, which LLVM vectorises.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ rhs` — used for weight gradients: `gW = xᵀ @ dy`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn outer dimensions must match");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = rhs.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ rhsᵀ` — used for input gradients: `dx = dy @ Wᵀ`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dimensions must match");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, v: &[f32]) {
        assert_eq!(
            v.len(),
            self.cols,
            "broadcast vector must match column count"
        );
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(v) {
                *o += b;
            }
        }
    }

    /// Element-wise `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of each column, e.g. a bias gradient.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of each row.
    pub fn row_sums(&self) -> Vec<f32> {
        self.data
            .chunks_exact(self.cols.max(1))
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row counts must match");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Splits columns at `at`, the inverse of [`Matrix::hcat`].
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split point beyond column count");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column counts must match");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Splits rows at `at`, the inverse of [`Matrix::vcat`].
    pub fn vsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.rows, "split point beyond row count");
        let top = Matrix::from_vec(at, self.cols, self.data[..at * self.cols].to_vec());
        let bottom = Matrix::from_vec(
            self.rows - at,
            self.cols,
            self.data[at * self.cols..].to_vec(),
        );
        (top, bottom)
    }

    /// FLOPs of `a.matmul(b)` for cost accounting (2·m·k·n).
    pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
        2.0 * m as f64 * k as f64 * n as f64
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]); // 3x2
                                                          // aT (2x3) @ b (3x2) = 2x2
        let c = a.matmul_tn(&b);
        let at = Matrix::from_fn(2, 3, |r, c2| a.get(c2, r));
        let expect = at.matmul(&b);
        assert_eq!(c.as_slice(), expect.as_slice());
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 2x3
        let b = m(4, 3, &[1.0; 12]); // 4x3
        let c = a.matmul_nt(&b); // 2x4
        let bt = Matrix::from_fn(3, 4, |r, c2| b.get(c2, r));
        let expect = a.matmul(&bt);
        assert_eq!(c.as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn broadcast_and_axpy() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let b = m(2, 2, &[1.0; 4]);
        a.axpy(-1.0, &b);
        assert_eq!(a.as_slice(), &[10.0, 21.0, 12.0, 23.0]);
    }

    #[test]
    fn sums_and_norm() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.row_sums(), vec![6.0, 15.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        assert!((b.frob_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn hcat_then_hsplit_round_trips() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        let (l, r) = c.hsplit(2);
        assert_eq!(l.as_slice(), a.as_slice());
        assert_eq!(r.as_slice(), b.as_slice());
    }

    #[test]
    fn vcat_then_vsplit_round_trips() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = a.vcat(&b);
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
        let (t, bt) = c.vsplit(1);
        assert_eq!(t.as_slice(), a.as_slice());
        assert_eq!(bt.as_slice(), b.as_slice());
    }

    #[test]
    fn hadamard_elementwise() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[2.0, 2.0, 0.5, 0.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 4.0, 1.5, 0.0]);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = m(2, 2, &[1.0; 4]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
        assert_eq!((a.rows(), a.cols()), (2, 2));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(Matrix::matmul_flops(2, 3, 4), 48.0);
    }
}
