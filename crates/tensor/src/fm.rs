//! The factorization-machine second-order interaction, used by the
//! paper's DeepFM workload.
//!
//! For one example with field embeddings `v_1..v_F` (each of dimension
//! D), the FM term is `0.5 Σ_d [(Σ_f v_{f,d})² − Σ_f v_{f,d}²]` — the
//! classic O(F·D) rewriting of all pairwise dot products. The layer is
//! parameter-free; its gradient flows back into the embeddings, which is
//! exactly what makes DeepFM embedding-communication heavy.

use crate::matrix::Matrix;

/// Parameter-free FM pairwise-interaction layer over `fields` embeddings
/// of dimension `dim`, laid out as a `(batch × fields·dim)` matrix with
/// fields concatenated (the same layout the deep MLP consumes).
pub struct FmInteraction {
    fields: usize,
    dim: usize,
    last_input: Option<Matrix>,
    last_sums: Option<Matrix>,
}

impl FmInteraction {
    /// Creates the layer for `fields` fields of `dim`-dimensional
    /// embeddings.
    pub fn new(fields: usize, dim: usize) -> Self {
        assert!(fields >= 2, "FM needs at least two fields to interact");
        assert!(dim >= 1, "embedding dimension must be positive");
        FmInteraction {
            fields,
            dim,
            last_input: None,
            last_sums: None,
        }
    }

    /// Number of interacting fields.
    pub fn fields(&self) -> usize {
        self.fields
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Forward pass: `(batch × fields·dim) → (batch × 1)` FM scores.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.forward_inference_with_sums(x, true);
        self.last_input = Some(x.clone());
        y
    }

    /// Inference-only forward pass.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.fields * self.dim,
            "input width must be fields*dim"
        );
        let mut out = Matrix::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            out.set(r, 0, self.fm_row(x.row(r), None));
        }
        out
    }

    fn forward_inference_with_sums(&mut self, x: &Matrix, store: bool) -> Matrix {
        assert_eq!(
            x.cols(),
            self.fields * self.dim,
            "input width must be fields*dim"
        );
        let mut out = Matrix::zeros(x.rows(), 1);
        let mut sums = Matrix::zeros(x.rows(), self.dim);
        for r in 0..x.rows() {
            let score = self.fm_row(x.row(r), Some(sums.row_mut(r)));
            out.set(r, 0, score);
        }
        if store {
            self.last_sums = Some(sums);
        }
        out
    }

    /// FM score of one example row; optionally writes the per-dimension
    /// field sums into `sums_out`.
    fn fm_row(&self, row: &[f32], sums_out: Option<&mut [f32]>) -> f32 {
        let d = self.dim;
        let mut sum = vec![0.0f32; d];
        let mut sum_sq = vec![0.0f32; d];
        for f in 0..self.fields {
            let v = &row[f * d..(f + 1) * d];
            for (k, &x) in v.iter().enumerate() {
                sum[k] += x;
                sum_sq[k] += x * x;
            }
        }
        let score = 0.5
            * sum
                .iter()
                .zip(&sum_sq)
                .map(|(&s, &q)| s * s - q)
                .sum::<f32>();
        if let Some(out) = sums_out {
            out.copy_from_slice(&sum);
        }
        score
    }

    /// Backward pass: `dy` is `(batch × 1)`; returns the gradient with
    /// the input layout. `∂score/∂v_{f,d} = S_d − v_{f,d}`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .last_input
            .as_ref()
            .expect("FmInteraction::backward before forward");
        let sums = self
            .last_sums
            .as_ref()
            .expect("FmInteraction::backward before forward");
        assert_eq!(dy.rows(), x.rows(), "dy batch mismatch");
        let d = self.dim;
        let mut dx = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let g = dy.get(r, 0);
            let s = sums.row(r);
            let xr = x.row(r);
            let dr = dx.row_mut(r);
            for f in 0..self.fields {
                for (k, &sk) in s.iter().enumerate().take(d) {
                    let idx = f * d + k;
                    dr[idx] = g * (sk - xr[idx]);
                }
            }
        }
        dx
    }

    /// Forward+backward FLOPs per batch.
    pub fn flops(&self, batch: usize) -> f64 {
        8.0 * batch as f64 * self.fields as f64 * self.dim as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_explicit_pairwise_sum() {
        // Two fields, D=2: FM = v1 · v2.
        let mut fm = FmInteraction::new(2, 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let y = fm.forward(&x);
        assert!((y.get(0, 0) - 11.0).abs() < 1e-6, "1*3 + 2*4 = 11");
    }

    #[test]
    fn three_fields_all_pairs() {
        // Three fields, D=1, values a=1,b=2,c=3: FM = ab+ac+bc = 11.
        let mut fm = FmInteraction::new(3, 1);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        assert!((fm.forward(&x).get(0, 0) - 11.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut fm = FmInteraction::new(3, 2);
        let vals = vec![0.5f32, -0.3, 0.8, 0.1, -0.6, 0.4];
        let x = Matrix::from_vec(1, 6, vals.clone());
        let y = fm.forward(&x);
        assert_eq!(y.rows(), 1);
        let dy = Matrix::from_vec(1, 1, vec![1.0]);
        let dx = fm.backward(&dy);

        let eps = 1e-3f32;
        for i in 0..6 {
            let mut p = vals.clone();
            p[i] += eps;
            let mut m = vals.clone();
            m[i] -= eps;
            let fp = fm.forward_inference(&Matrix::from_vec(1, 6, p)).get(0, 0);
            let fmv = fm.forward_inference(&Matrix::from_vec(1, 6, m)).get(0, 0);
            let num = (fp - fmv) / (2.0 * eps);
            assert!((num - dx.get(0, i)).abs() < 1e-2, "dx[{i}]");
        }
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut fm = FmInteraction::new(4, 3);
        let x = Matrix::from_vec(2, 12, (0..24).map(|i| (i as f32) * 0.1 - 1.0).collect());
        let a = fm.forward(&x);
        let b = fm.forward_inference(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least two fields")]
    fn single_field_rejected() {
        let _ = FmInteraction::new(1, 4);
    }

    #[test]
    #[should_panic(expected = "fields*dim")]
    fn wrong_width_rejected() {
        let mut fm = FmInteraction::new(2, 2);
        let _ = fm.forward(&Matrix::zeros(1, 5));
    }
}
