//! Deterministic in-tree pseudo-randomness for the HET reproduction.
//!
//! The repo must build and test in a hermetic environment with no crate
//! registry, so this crate replaces the small slice of the `rand` API the
//! workspace actually uses: seedable generators (`rngs::StdRng`,
//! `rngs::SmallRng`), `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. Module paths mirror `rand` so call sites
//! only swap the crate name.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): one
//! 64-bit word of state, an additive Weyl sequence mixed by two
//! xor-multiply rounds. It is statistically strong for simulation
//! workloads, trivially seedable from any `u64` (including 0), and —
//! the property everything here depends on — a pure function of its
//! seed, so every dataset, model init, and fault schedule replays
//! bit-identically.

#![warn(missing_docs)]

use std::ops::Range;

/// The raw SplitMix64 generator: one step per `next_u64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed (any value, including 0).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The minimal core every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: floats are
    /// uniform in `[0, 1)`, integers uniform over their full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from raw uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (must be non-empty).
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Maps 64 uniform bits onto `0..n` without modulo bias (Lemire's
/// multiply-shift; the simulation tolerates the ~2⁻⁶⁴ residual bias).
fn bounded(rng: &mut impl RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        let v = lo + f64::sample(rng) * (hi - lo);
        // Guard against round-up to the excluded endpoint.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        let v = lo + f32::sample(rng) * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng(SplitMix64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SplitMix64::new(seed))
        }
    }

    /// Alias of [`StdRng`]: one generator serves both roles here.
    pub type SmallRng = StdRng;
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let s = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_every_small_bucket() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "empirical {p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty gen_range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items should move something");
    }

    #[test]
    fn choose_uniformity_and_empty() {
        let mut rng = StdRng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [1u8, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[(*items.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
