//! Validator for the `het-trace-v1` JSONL schema.
//!
//! Used by the golden-trace regression tests and the CI gate: committed
//! fixture files and freshly generated traces must both pass. The
//! validator checks line-level shape (required keys, value types), the
//! meta header, and cross-line ordering (meta first, counters after the
//! last event, counters sorted).

use het_json::Json;
use std::collections::BTreeSet;

/// The component taxonomy of `het-trace-v1`. Every event and counter
/// line must name one of these; the validator rejects anything else, so
/// adding a component is a deliberate schema change, not a typo.
///
/// | component | emits |
/// |-----------|-------|
/// | `autoscaler` | events: `scale_up`, `scale_down` (fleet resize decisions with queue/p99 evidence); counters: evals, scale_ups, scale_downs |
/// | `cache`   | events: `policy_switch` (adaptive meta-policy changed its inner eviction policy; fields: from, to, hot_frac, resident, observations); counters: hits, misses, installs, writebacks, evictions, capacity_evictions, invalidations, dirtied, crash_drops, prefetch_installs, prefetch_hits, prefetch_wasted, policy_switches |
/// | `client`  | events: `read_window` (staleness-validation outcome per read) |
/// | `prefetcher` | events: `prefetch_issue` (span: lookahead pull in flight), `prefetch_install` (results landed in a worker cache, with waited_ns), `prefetch_hit` (reads served by unconsumed prefetches), `prefetch_waste`, `prefetch_cancel` (crash/outage invalidation); counters: issued_keys, cancelled_keys (per worker) |
/// | `ps`      | events: `failover`; counters: pulls, pushes (per shard) |
/// | `serve`   | events: `request`, `batch`, `lookup`, `infer`, `replica_crash`, `replica_respawn`, `replica_admit`, `retry_wait`, `drift_prefetch` (respawn prefetch of recently-hot keys); counters: requests, batches, queue_wait_ns, lookup_ns, infer_ns, degraded_reads, warmed_keys, drift_prefetched_keys, retry_waits (per replica) |
/// | `simnet`  | events: link/fault schedule milestones |
/// | `store`   | counters: hot_hits, promotions, demotions, clean_drops, cold_read_bytes, cold_write_bytes, compactions (per PS shard; emitted only when a shard runs the tiered store, so flat-store traces are unchanged) |
/// | `supervisor` | events: `detect_crash`, `respawn`, `detect_outage`, `shard_restored`, `split_begin`, `migrate`, `split_done` (failure detection + driven recovery + live resharding); counters: heartbeats, detections, respawns, migrated_keys |
/// | `trainer` | events: iteration/fault spans (`blocked_wait`, …); counters: degraded_reads, … |
///
/// Kept sorted so membership checks can binary-search.
pub const KNOWN_COMPONENTS: &[&str] = &[
    "autoscaler",
    "cache",
    "client",
    "prefetcher",
    "ps",
    "serve",
    "simnet",
    "store",
    "supervisor",
    "trainer",
];

/// True when `comp` is part of the registered taxonomy.
pub fn known_component(comp: &str) -> bool {
    KNOWN_COMPONENTS.binary_search(&comp).is_ok()
}

/// What a valid trace contained, for coverage assertions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of event lines (spans + instants).
    pub events: usize,
    /// Number of span lines (events with a `dur`).
    pub spans: usize,
    /// Number of counter lines.
    pub counters: usize,
    /// Distinct components seen across events and counters.
    pub components: BTreeSet<String>,
    /// Distinct `comp.name` event kinds seen.
    pub event_kinds: BTreeSet<String>,
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require_str(obj: &[(String, Json)], key: &str, line: usize) -> Result<String, String> {
    match get(obj, key) {
        Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
        Some(_) => Err(format!(
            "line {line}: field '{key}' must be a non-empty string"
        )),
        None => Err(format!("line {line}: missing field '{key}'")),
    }
}

fn require_uint(obj: &[(String, Json)], key: &str, line: usize) -> Result<u64, String> {
    match get(obj, key) {
        Some(Json::UInt(n)) => Ok(*n),
        Some(_) => Err(format!(
            "line {line}: field '{key}' must be an unsigned integer"
        )),
        None => Err(format!("line {line}: missing field '{key}'")),
    }
}

fn require_uint_or_null(
    obj: &[(String, Json)],
    key: &str,
    line: usize,
) -> Result<Option<u64>, String> {
    match get(obj, key) {
        Some(Json::UInt(n)) => Ok(Some(*n)),
        Some(Json::Null) => Ok(None),
        Some(_) => Err(format!("line {line}: field '{key}' must be uint or null")),
        None => Err(format!("line {line}: missing field '{key}'")),
    }
}

/// Validates a full JSONL trace document against `het-trace-v1`.
/// Returns a [`TraceSummary`] on success and a message naming the first
/// offending line on failure.
pub fn validate_jsonl(input: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut saw_meta = false;
    let mut in_counter_tail = false;
    let mut last_counter_key: Option<(String, String, Option<u64>)> = None;
    // Wall-clock (threaded, merged) traces carry `"clock":"wall"` in
    // the meta line. The single sim clock is globally serial but NOT
    // monotone in emission order (the trainer re-scopes backwards at
    // phase boundaries), so no ordering is checked for sim traces —
    // exactly the pre-threading behaviour. A merged wall-clock trace,
    // by the documented merge rule (`merge_threads`), must instead be
    // (t, tid)-sorted with a tid on every event; that global order
    // implies per-thread monotonicity, which is what we enforce.
    let mut wall_clock = false;
    let mut last_event_key: Option<(u64, u64)> = None;

    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            return Err(format!("line {line}: blank line in trace"));
        }
        let parsed =
            het_json::from_str(raw).map_err(|e| format!("line {line}: not valid JSON ({e})"))?;
        let Json::Obj(obj) = parsed else {
            return Err(format!("line {line}: every trace line must be an object"));
        };
        let kind = require_str(&obj, "type", line)?;
        if line == 1 {
            if kind != "meta" {
                return Err("line 1: first line must have type 'meta'".to_string());
            }
            let schema = require_str(&obj, "schema", line)?;
            if schema != crate::SCHEMA_VERSION {
                return Err(format!(
                    "line 1: schema '{schema}' != expected '{}'",
                    crate::SCHEMA_VERSION
                ));
            }
            if let Some(Json::Str(clock)) = get(&obj, crate::CLOCK_META_KEY) {
                if clock == "wall" {
                    wall_clock = true;
                }
            }
            saw_meta = true;
            continue;
        }
        match kind.as_str() {
            "meta" => return Err(format!("line {line}: duplicate meta line")),
            "event" => {
                if in_counter_tail {
                    return Err(format!(
                        "line {line}: event after counter tail (counters must come last)"
                    ));
                }
                let t = require_uint(&obj, "t", line)?;
                require_uint_or_null(&obj, "w", line)?;
                match get(&obj, "tid") {
                    Some(Json::UInt(tid)) if wall_clock => {
                        let key = (t, *tid);
                        if let Some(prev) = last_event_key {
                            if key < prev {
                                return Err(format!(
                                    "line {line}: wall-clock events out of (t, tid) merge \
                                     order (got t={t} tid={tid} after t={} tid={})",
                                    prev.0, prev.1
                                ));
                            }
                        }
                        last_event_key = Some(key);
                    }
                    Some(Json::UInt(_)) => {}
                    Some(_) => {
                        return Err(format!("line {line}: 'tid' must be an unsigned integer"))
                    }
                    None if wall_clock => {
                        return Err(format!(
                            "line {line}: wall-clock trace event is missing 'tid'"
                        ))
                    }
                    None => {}
                }
                let comp = require_str(&obj, "comp", line)?;
                if !known_component(&comp) {
                    return Err(format!("line {line}: unknown component '{comp}'"));
                }
                let name = require_str(&obj, "name", line)?;
                if let Some(dur) = get(&obj, "dur") {
                    if !matches!(dur, Json::UInt(_)) {
                        return Err(format!("line {line}: 'dur' must be an unsigned integer"));
                    }
                    summary.spans += 1;
                }
                match get(&obj, "fields") {
                    Some(Json::Obj(_)) => {}
                    Some(_) => return Err(format!("line {line}: 'fields' must be an object")),
                    None => return Err(format!("line {line}: missing field 'fields'")),
                }
                summary.events += 1;
                summary.event_kinds.insert(format!("{comp}.{name}"));
                summary.components.insert(comp);
            }
            "counter" => {
                in_counter_tail = true;
                let comp = require_str(&obj, "comp", line)?;
                if !known_component(&comp) {
                    return Err(format!("line {line}: unknown component '{comp}'"));
                }
                let name = require_str(&obj, "name", line)?;
                let idx = require_uint_or_null(&obj, "idx", line)?;
                require_uint(&obj, "value", line)?;
                let key = (comp.clone(), name, idx);
                if let Some(prev) = &last_counter_key {
                    if *prev >= key {
                        return Err(format!(
                            "line {line}: counters out of sorted (comp,name,idx) order"
                        ));
                    }
                }
                last_counter_key = Some(key);
                summary.counters += 1;
                summary.components.insert(comp);
            }
            other => return Err(format!("line {line}: unknown line type '{other}'")),
        }
    }
    if !saw_meta {
        return Err("empty trace: missing meta line".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_json::Json;

    fn sample_log() -> crate::TraceLog {
        crate::start(vec![("seed".to_string(), Json::UInt(1))]);
        crate::set_scope(5, Some(0));
        crate::emit("trainer", "read", Some(3), vec![]);
        crate::emit(
            "ps",
            "failover",
            None,
            vec![("shard", crate::Value::UInt(1))],
        );
        crate::counter_add("cache", "hits", 2);
        crate::counter_add_at("ps", "pull", Some(1), 1);
        crate::finish()
    }

    #[test]
    fn valid_trace_summarises() {
        let jsonl = sample_log().to_jsonl();
        let s = validate_jsonl(&jsonl).unwrap();
        assert_eq!(s.events, 2);
        assert_eq!(s.spans, 1);
        assert_eq!(s.counters, 2);
        assert!(s.components.contains("trainer"));
        assert!(s.components.contains("cache"));
        assert!(s.event_kinds.contains("ps.failover"));
    }

    #[test]
    fn rejects_missing_meta() {
        let jsonl = sample_log().to_jsonl();
        let without_meta: String = jsonl.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl(&without_meta).is_err());
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let jsonl = sample_log()
            .to_jsonl()
            .replace("het-trace-v1", "het-trace-v0");
        assert!(validate_jsonl(&jsonl).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let good = sample_log().to_jsonl();
        for (needle, replacement) in [
            (r#""t":5"#, r#""t":-5"#),            // negative timestamp
            (r#""w":0"#, r#""w":"zero""#),        // wrong worker type
            (r#""fields":{}"#, r#""fields":[]"#), // fields not an object
            (r#""value":2"#, r#""value":2.5"#),   // float counter value
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement {needle} did not apply");
            assert!(validate_jsonl(&bad).is_err(), "should reject {needle}");
        }
        let truncated = good.replace(r#""type":"event""#, r#""type":"mystery""#);
        assert!(validate_jsonl(&truncated).is_err());
    }

    #[test]
    fn component_registry_is_sorted_and_enforced() {
        let mut sorted = KNOWN_COMPONENTS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KNOWN_COMPONENTS, "registry must stay sorted");
        assert!(known_component("serve"));
        assert!(!known_component("mystery"));

        let good = sample_log().to_jsonl();
        let bad = good.replace(r#""comp":"trainer""#, r#""comp":"mystery""#);
        assert_ne!(bad, good);
        let err = validate_jsonl(&bad).unwrap_err();
        assert!(err.contains("unknown component"), "got: {err}");
        let bad_counter = good.replace(r#""comp":"cache""#, r#""comp":"mystery""#);
        assert!(validate_jsonl(&bad_counter).is_err());
    }

    #[test]
    fn serve_component_is_accepted() {
        crate::start(vec![]);
        crate::set_scope(10, Some(0));
        crate::emit("serve", "request", Some(4), vec![]);
        crate::counter_add("serve", "requests", 1);
        let jsonl = crate::finish().to_jsonl();
        let s = validate_jsonl(&jsonl).unwrap();
        assert!(s.components.contains("serve"));
        assert!(s.event_kinds.contains("serve.request"));
    }

    #[test]
    fn supervision_components_are_accepted() {
        crate::start(vec![]);
        crate::set_scope(20, None);
        crate::emit(
            "supervisor",
            "detect_crash",
            None,
            vec![("replica", crate::Value::UInt(1))],
        );
        crate::emit("autoscaler", "scale_up", None, vec![]);
        crate::counter_add("supervisor", "heartbeats", 3);
        crate::counter_add("autoscaler", "evals", 1);
        let jsonl = crate::finish().to_jsonl();
        let s = validate_jsonl(&jsonl).unwrap();
        assert!(s.components.contains("supervisor"));
        assert!(s.components.contains("autoscaler"));
        assert!(s.event_kinds.contains("supervisor.detect_crash"));
        assert!(s.event_kinds.contains("autoscaler.scale_up"));
    }

    #[test]
    fn store_component_is_accepted() {
        crate::start(vec![]);
        crate::set_scope(30, None);
        crate::counter_add_at("store", "demotions", Some(2), 5);
        crate::counter_add_at("store", "cold_write_bytes", Some(2), 640);
        let jsonl = crate::finish().to_jsonl();
        let s = validate_jsonl(&jsonl).unwrap();
        assert!(s.components.contains("store"));
    }

    #[test]
    fn wall_clock_interleaved_two_thread_stream_validates() {
        // Two per-thread buffers whose stamps interleave (thread 0 at
        // t=10,30; thread 1 at t=20,30): the merged stream must be
        // (t, tid)-sorted — the t=30 tie breaks on tid — and validate.
        let part = |ts: &[u64]| crate::TraceLog {
            meta: vec![],
            events: ts
                .iter()
                .map(|&t| crate::TraceEvent {
                    t_ns: t,
                    worker: Some(0),
                    tid: None,
                    comp: "trainer",
                    name: "compute",
                    dur_ns: None,
                    fields: vec![],
                })
                .collect(),
            counters: vec![],
        };
        let merged = crate::merge_threads(vec![], vec![part(&[10, 30]), part(&[20, 30])]);
        let order: Vec<(u64, Option<u64>)> =
            merged.events.iter().map(|e| (e.t_ns, e.tid)).collect();
        assert_eq!(
            order,
            vec![(10, Some(0)), (20, Some(1)), (30, Some(0)), (30, Some(1))]
        );
        let jsonl = merged.to_jsonl();
        assert!(jsonl.lines().next().unwrap().contains(r#""clock":"wall""#));
        let s = validate_jsonl(&jsonl).unwrap();
        assert_eq!(s.events, 4);

        // Per-thread monotone but mis-merged (global order violated):
        // swapping two lines must be rejected for a wall-clock trace.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(1, 2);
        let shuffled: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let err = validate_jsonl(&shuffled).unwrap_err();
        assert!(err.contains("(t, tid) merge order"), "got: {err}");

        // A wall-clock event without a tid is rejected.
        let untagged = jsonl.replace(r#""tid":1,"#, "");
        assert_ne!(untagged, jsonl);
        let err = validate_jsonl(&untagged).unwrap_err();
        assert!(err.contains("missing 'tid'"), "got: {err}");
    }

    #[test]
    fn sim_traces_without_wall_clock_skip_ordering_checks() {
        // The sim backend re-scopes time backwards at phase boundaries;
        // an out-of-order stream without the wall-clock meta stays
        // valid, exactly as before the threaded backend existed.
        crate::start(vec![]);
        crate::set_scope(500, Some(0));
        crate::emit("trainer", "compute", None, vec![]);
        crate::set_scope(100, Some(1));
        crate::emit("trainer", "compute", None, vec![]);
        let jsonl = crate::finish().to_jsonl();
        let s = validate_jsonl(&jsonl).unwrap();
        assert_eq!(s.events, 2);
    }

    #[test]
    fn rejects_event_after_counter_tail() {
        let jsonl = sample_log().to_jsonl();
        let mut lines: Vec<&str> = jsonl.lines().collect();
        // Move an event line to the end, after the counters.
        let event = lines.remove(1);
        lines.push(event);
        let shuffled: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl(&shuffled).is_err());
    }
}
