//! Replay API over finished traces.
//!
//! [`crate::TraceLog`] carries `&'static str` component/event names, so
//! a trace read back from its JSONL form cannot be reconstructed as a
//! `TraceLog`. This module provides the owned-string mirror the
//! `het-oracle` replay checker consumes: [`ReplayLog`] parses a
//! `het-trace-v1` document (or converts losslessly from an in-memory
//! `TraceLog`) and [`TraceCursor`] walks its event stream in emission
//! order.

use crate::{TraceLog, Value};
use het_json::Json;

/// One replayed trace event (owned strings).
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayEvent {
    /// Simulated timestamp, nanoseconds since simulation start.
    pub t_ns: u64,
    /// Worker the event is attributed to (`None` = global scope).
    pub worker: Option<u64>,
    /// Emitting component.
    pub comp: String,
    /// Event name within the component.
    pub name: String,
    /// Span duration; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    /// Structured payload fields (insertion order preserved).
    pub fields: Vec<(String, Json)>,
}

impl ReplayEvent {
    /// True when the event is `comp/name`.
    pub fn is(&self, comp: &str, name: &str) -> bool {
        self.comp == comp && self.name == name
    }

    /// Looks up a payload field by name.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A payload field as an unsigned integer, if present and unsigned.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Final value of one replayed counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayCounter {
    /// Owning component.
    pub comp: String,
    /// Counter name.
    pub name: String,
    /// Optional sub-index (worker or shard); `None` aggregates.
    pub idx: Option<u64>,
    /// Accumulated value.
    pub value: u64,
}

/// A finished trace in replayable (owned) form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayLog {
    /// Run metadata from the meta line (minus `type`/`schema`).
    pub meta: Vec<(String, Json)>,
    /// All events, in emission order.
    pub events: Vec<ReplayEvent>,
    /// Final counter values, in the document's sorted order.
    pub counters: Vec<ReplayCounter>,
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(obj: &[(String, Json)], key: &str) -> Option<String> {
    match get(obj, key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_uint(obj: &[(String, Json)], key: &str) -> Option<u64> {
    match get(obj, key) {
        Some(Json::UInt(n)) => Some(*n),
        _ => None,
    }
}

fn get_opt_uint(obj: &[(String, Json)], key: &str) -> Option<u64> {
    match get(obj, key) {
        Some(Json::UInt(n)) => Some(*n),
        _ => None,
    }
}

impl ReplayLog {
    /// Parses a `het-trace-v1` JSONL document. The document is first
    /// run through [`crate::schema::validate_jsonl`], so a successful
    /// parse implies schema validity.
    pub fn parse(jsonl: &str) -> Result<ReplayLog, String> {
        crate::schema::validate_jsonl(jsonl)?;
        let mut log = ReplayLog::default();
        for raw in jsonl.lines() {
            let Json::Obj(obj) = het_json::from_str(raw).expect("validated line") else {
                unreachable!("validated line is an object");
            };
            match get_str(&obj, "type").expect("validated type").as_str() {
                "meta" => {
                    log.meta = obj
                        .into_iter()
                        .filter(|(k, _)| k != "type" && k != "schema")
                        .collect();
                }
                "event" => {
                    let fields = match get(&obj, "fields") {
                        Some(Json::Obj(f)) => f.clone(),
                        _ => unreachable!("validated fields object"),
                    };
                    log.events.push(ReplayEvent {
                        t_ns: get_uint(&obj, "t").expect("validated t"),
                        worker: get_opt_uint(&obj, "w"),
                        comp: get_str(&obj, "comp").expect("validated comp"),
                        name: get_str(&obj, "name").expect("validated name"),
                        dur_ns: get_opt_uint(&obj, "dur"),
                        fields,
                    });
                }
                "counter" => {
                    log.counters.push(ReplayCounter {
                        comp: get_str(&obj, "comp").expect("validated comp"),
                        name: get_str(&obj, "name").expect("validated name"),
                        idx: get_opt_uint(&obj, "idx"),
                        value: get_uint(&obj, "value").expect("validated value"),
                    });
                }
                _ => unreachable!("validated line type"),
            }
        }
        Ok(log)
    }

    /// Sum of a counter across all sub-indices.
    pub fn counter(&self, comp: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.comp == comp && c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of a counter at one specific sub-index.
    pub fn counter_at(&self, comp: &str, name: &str, idx: Option<u64>) -> u64 {
        self.counters
            .iter()
            .find(|c| c.comp == comp && c.name == name && c.idx == idx)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// A cursor at the start of the event stream.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            events: &self.events,
            pos: 0,
        }
    }
}

impl From<&TraceLog> for ReplayLog {
    fn from(log: &TraceLog) -> ReplayLog {
        ReplayLog {
            meta: log.meta.clone(),
            events: log
                .events
                .iter()
                .map(|e| ReplayEvent {
                    t_ns: e.t_ns,
                    worker: e.worker,
                    comp: e.comp.to_string(),
                    name: e.name.to_string(),
                    dur_ns: e.dur_ns,
                    fields: e
                        .fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), value_to_json(v)))
                        .collect(),
                })
                .collect(),
            counters: log
                .counters
                .iter()
                .map(|c| ReplayCounter {
                    comp: c.comp.to_string(),
                    name: c.name.to_string(),
                    idx: c.idx,
                    value: c.value,
                })
                .collect(),
        }
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Bool(b) => Json::Bool(*b),
        Value::UInt(n) => Json::UInt(*n),
        Value::Int(n) => Json::Int(*n),
        Value::Num(n) => Json::Num(*n),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

/// A forward-only cursor over a [`ReplayLog`]'s event stream.
#[derive(Clone, Copy)]
pub struct TraceCursor<'a> {
    events: &'a [ReplayEvent],
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// The next event without advancing.
    pub fn peek(&self) -> Option<&'a ReplayEvent> {
        self.events.get(self.pos)
    }

    /// Current position in the stream (events consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.pos
    }

    /// Advances to the next event matching `pred`, consuming (and
    /// skipping) everything before it.
    pub fn seek(&mut self, mut pred: impl FnMut(&ReplayEvent) -> bool) -> Option<&'a ReplayEvent> {
        while let Some(e) = self.events.get(self.pos) {
            self.pos += 1;
            if pred(e) {
                return Some(e);
            }
        }
        None
    }
}

impl<'a> Iterator for TraceCursor<'a> {
    type Item = &'a ReplayEvent;

    fn next(&mut self) -> Option<&'a ReplayEvent> {
        let e = self.events.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        crate::start(vec![("seed".to_string(), Json::UInt(9))]);
        crate::set_scope(5, Some(0));
        crate::emit("trainer", "read", Some(3), vec![("keys", Value::UInt(4))]);
        crate::set_scope(8, Some(1));
        crate::emit(
            "client",
            "read_window",
            None,
            vec![
                ("max_lag", Value::UInt(2)),
                ("note", Value::Str("x".into())),
            ],
        );
        crate::counter_add_at("cache", "hits", Some(0), 3);
        crate::counter_add_at("cache", "hits", Some(1), 2);
        crate::finish()
    }

    #[test]
    fn jsonl_round_trip_matches_in_memory_conversion() {
        let log = sample_log();
        let from_mem = ReplayLog::from(&log);
        let from_text = ReplayLog::parse(&log.to_jsonl()).unwrap();
        assert_eq!(from_mem, from_text);
        assert_eq!(from_text.counter("cache", "hits"), 5);
        assert_eq!(from_text.counter_at("cache", "hits", Some(1)), 2);
        assert_eq!(from_text.meta, vec![("seed".to_string(), Json::UInt(9))]);
    }

    #[test]
    fn cursor_walks_in_order_and_seeks() {
        let log = ReplayLog::from(&sample_log());
        let mut c = log.cursor();
        assert_eq!(c.remaining(), 2);
        let first = c.next().unwrap();
        assert!(first.is("trainer", "read"));
        assert_eq!(first.dur_ns, Some(3));
        assert_eq!(first.field_u64("keys"), Some(4));
        let hit = c.seek(|e| e.is("client", "read_window")).unwrap();
        assert_eq!(hit.worker, Some(1));
        assert_eq!(hit.t_ns, 8);
        assert_eq!(hit.field_u64("max_lag"), Some(2));
        assert!(hit.field_u64("note").is_none(), "string field is not u64");
        assert_eq!(c.remaining(), 0);
        assert!(c.next().is_none());
    }

    #[test]
    fn parse_rejects_invalid_documents() {
        assert!(ReplayLog::parse("").is_err());
        assert!(ReplayLog::parse("{\"type\":\"event\"}\n").is_err());
    }
}
