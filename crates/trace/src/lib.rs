//! Structured event tracing and metrics for the HET simulator.
//!
//! The simulator's end-of-run aggregates (`CommStats`, `TimeBreakdown`)
//! say *what* a number is; they cannot say *why* it moved. This crate
//! adds a per-event view: instrumented call sites across `simnet`, `ps`,
//! `cache`, and `core` emit **spans** (phases with a sim-time duration),
//! **instant events** (crashes, failovers, blocking waits), and
//! **counters** (hits, misses, bytes per traffic class) into a
//! thread-local collector. A finished [`TraceLog`] exports as JSONL
//! (one event per line, schema `het-trace-v1`) and as a Chrome
//! `trace_event` JSON for `chrome://tracing` / Perfetto.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled.** Tracing is off by default; every
//!    instrumentation macro first reads a thread-local flag and does no
//!    other work when it is clear. Benchmarks run untouched.
//! 2. **Deterministic when enabled.** All timestamps are *simulated*
//!    time, counters live in a `BTreeMap`, and no instrumentation point
//!    sits on a `HashMap`-iteration-ordered path — so a fixed seed
//!    yields a byte-identical trace, which is what makes golden-trace
//!    regression tests possible.
//! 3. **No API threading.** Call sites deep in the cache or PS do not
//!    receive a collector handle; the trainer publishes an ambient
//!    scope (current sim time + worker) via [`set_scope`], and leaf
//!    code attributes events to it.
//!
//! The collector is thread-local on purpose: the simulator itself is
//! single-threaded, and keeping state off shared memory means tests in
//! other threads (including concurrent PS tests) never observe or
//! perturb a trace in progress.

#![warn(missing_docs)]

pub mod chrome;
pub mod replay;
pub mod schema;

use het_json::Json;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};

/// Schema identifier written into the JSONL meta line and checked by
/// the validator. Bump when the line shape changes.
pub const SCHEMA_VERSION: &str = "het-trace-v1";

/// A field value attached to a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, nanoseconds, bytes).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point (metrics, losses).
    Num(f64),
    /// Free-form text.
    Str(String),
}

impl Value {
    /// The JSON form of this value.
    pub fn to_json(&self) -> Json {
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::UInt(n) => Json::UInt(*n),
            Value::Int(n) => Json::Int(*n),
            Value::Num(x) => Json::Num(*x),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp, nanoseconds since simulation start.
    pub t_ns: u64,
    /// Worker the event is attributed to (`None` = global/round scope).
    pub worker: Option<u64>,
    /// Emitting thread, for traces merged from per-thread buffers
    /// ([`merge_threads`]). `None` on the single-threaded sim backend —
    /// and the field is omitted from the JSONL line when `None`, so sim
    /// traces stay byte-identical to pre-threading fixtures.
    pub tid: Option<u64>,
    /// Emitting component: `"simnet"`, `"ps"`, `"cache"`, `"trainer"`.
    pub comp: &'static str,
    /// Event name within the component (e.g. `"read"`, `"failover"`).
    pub name: &'static str,
    /// Span duration in nanoseconds; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    /// Structured payload fields.
    pub fields: Vec<(&'static str, Value)>,
}

/// Final value of one counter in the metrics registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterEntry {
    /// Owning component.
    pub comp: &'static str,
    /// Counter name.
    pub name: &'static str,
    /// Optional sub-index (worker for trainer/cache/simnet counters,
    /// shard for PS counters); `None` aggregates across all.
    pub idx: Option<u64>,
    /// Accumulated value.
    pub value: u64,
}

/// A finished trace: run metadata, the event stream in emission order,
/// and the final counter totals in deterministic (sorted) order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// Run metadata key/value pairs written into the JSONL meta line.
    pub meta: Vec<(String, Json)>,
    /// All events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Final counter values, sorted by `(comp, name, idx)`.
    pub counters: Vec<CounterEntry>,
}

impl TraceLog {
    /// Sum of a counter across all sub-indices.
    pub fn counter(&self, comp: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.comp == comp && c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of a counter at one specific sub-index.
    pub fn counter_at(&self, comp: &str, name: &str, idx: Option<u64>) -> u64 {
        self.counters
            .iter()
            .find(|c| c.comp == comp && c.name == name && c.idx == idx)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Events emitted by one component.
    pub fn events_of<'a>(&'a self, comp: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.comp == comp)
    }

    /// The set of components that emitted at least one event or counter.
    pub fn components(&self) -> BTreeSet<&'static str> {
        self.events
            .iter()
            .map(|e| e.comp)
            .chain(self.counters.iter().map(|c| c.comp))
            .collect()
    }

    /// Serialises the trace as JSONL (schema `het-trace-v1`): a meta
    /// line, then one line per event in emission order, then one line
    /// per counter in sorted order. Every line ends with `\n`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut meta_fields = vec![
            ("type".to_string(), Json::Str("meta".to_string())),
            ("schema".to_string(), Json::Str(SCHEMA_VERSION.to_string())),
        ];
        meta_fields.extend(self.meta.iter().cloned());
        out.push_str(&Json::Obj(meta_fields).encode());
        out.push('\n');
        for e in &self.events {
            let mut fields = vec![
                ("type".to_string(), Json::Str("event".to_string())),
                ("t".to_string(), Json::UInt(e.t_ns)),
                (
                    "w".to_string(),
                    e.worker.map(Json::UInt).unwrap_or(Json::Null),
                ),
                ("comp".to_string(), Json::Str(e.comp.to_string())),
                ("name".to_string(), Json::Str(e.name.to_string())),
            ];
            if let Some(tid) = e.tid {
                fields.push(("tid".to_string(), Json::UInt(tid)));
            }
            if let Some(dur) = e.dur_ns {
                fields.push(("dur".to_string(), Json::UInt(dur)));
            }
            fields.push((
                "fields".to_string(),
                Json::Obj(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
            out.push_str(&Json::Obj(fields).encode());
            out.push('\n');
        }
        for c in &self.counters {
            let line = Json::Obj(vec![
                ("type".to_string(), Json::Str("counter".to_string())),
                ("comp".to_string(), Json::Str(c.comp.to_string())),
                ("name".to_string(), Json::Str(c.name.to_string())),
                (
                    "idx".to_string(),
                    c.idx.map(Json::UInt).unwrap_or(Json::Null),
                ),
                ("value".to_string(), Json::UInt(c.value)),
            ]);
            out.push_str(&line.encode());
            out.push('\n');
        }
        out
    }
}

struct Collector {
    meta: Vec<(String, Json)>,
    events: Vec<TraceEvent>,
    counters: BTreeMap<(&'static str, &'static str, Option<u64>), u64>,
    t_ns: u64,
    worker: Option<u64>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Whether tracing is active on this thread. Instrumentation macros
/// check this first; when it is `false` they evaluate none of their
/// arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Starts collecting on this thread with the given run metadata.
/// Replaces any trace already in progress.
pub fn start(meta: Vec<(String, Json)>) {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            meta,
            events: Vec::new(),
            counters: BTreeMap::new(),
            t_ns: 0,
            worker: None,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Stops collecting and returns the finished trace. Counters are laid
/// out in sorted `(comp, name, idx)` order. Returns an empty log if
/// tracing was never started.
pub fn finish() -> TraceLog {
    ENABLED.with(|e| e.set(false));
    COLLECTOR.with(|c| match c.borrow_mut().take() {
        Some(col) => TraceLog {
            meta: col.meta,
            events: col.events,
            counters: col
                .counters
                .into_iter()
                .map(|((comp, name, idx), value)| CounterEntry {
                    comp,
                    name,
                    idx,
                    value,
                })
                .collect(),
        },
        None => TraceLog::default(),
    })
}

/// Publishes the ambient scope: the current simulated time and the
/// worker subsequent events/counters are attributed to. The trainer
/// calls this at phase boundaries; leaf code never needs to.
pub fn set_scope(t_ns: u64, worker: Option<u64>) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.t_ns = t_ns;
            col.worker = worker;
        }
    });
}

/// Records an event at the ambient scope's time and worker. A `Some`
/// duration makes it a span, `None` an instant event. No-op when
/// tracing is disabled.
pub fn emit(
    comp: &'static str,
    name: &'static str,
    dur_ns: Option<u64>,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.events.push(TraceEvent {
                t_ns: col.t_ns,
                worker: col.worker,
                tid: None,
                comp,
                name,
                dur_ns,
                fields,
            });
        }
    });
}

/// Like [`emit`], but with an explicit timestamp (for call sites that
/// know a more precise time than the ambient scope, e.g. a fault's
/// scheduled instant).
pub fn emit_at(
    comp: &'static str,
    name: &'static str,
    t_ns: u64,
    dur_ns: Option<u64>,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.events.push(TraceEvent {
                t_ns,
                worker: col.worker,
                tid: None,
                comp,
                name,
                dur_ns,
                fields,
            });
        }
    });
}

/// Adds `delta` to a counter, attributed to the ambient worker as its
/// sub-index. No-op when tracing is disabled.
#[inline]
pub fn counter_add(comp: &'static str, name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let idx = col.worker;
            *col.counters.entry((comp, name, idx)).or_insert(0) += delta;
        }
    });
}

/// Adds `delta` to a counter at an explicit sub-index (e.g. a PS shard
/// rather than the ambient worker). No-op when tracing is disabled.
#[inline]
pub fn counter_add_at(comp: &'static str, name: &'static str, idx: Option<u64>, delta: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            *col.counters.entry((comp, name, idx)).or_insert(0) += delta;
        }
    });
}

/// Meta key announcing that a trace's timestamps are wall-clock
/// nanoseconds merged from per-thread buffers (value: `"wall"`). The
/// schema validator switches to per-thread monotonicity rules when it
/// sees this key; sim traces never carry it.
pub const CLOCK_META_KEY: &str = "clock";

/// Merges per-thread trace buffers into one deterministic [`TraceLog`].
///
/// The threaded backend runs one collector per OS thread (the existing
/// thread-local sink, unchanged); at join time the parent thread calls
/// this with each thread's [`finish`]ed log, in thread-id order. The
/// merge rule — the one documented contract the validator and the
/// replay tools rely on — is:
///
/// 1. every event from buffer `i` is tagged `tid = i` (pre-tagged
///    events keep their tag, so re-merging is idempotent);
/// 2. events are **stable-sorted by `(t_ns, tid)`** — wall-clock stamp
///    first, thread id as the tie-breaker — so two runs that produce
///    the same per-thread stamps serialise identically no matter how
///    the OS interleaved the threads;
/// 3. counters are summed across buffers per `(comp, name, idx)` and
///    laid out in sorted order, exactly like a single collector;
/// 4. the merged meta gains `"clock": "wall"` (see [`CLOCK_META_KEY`])
///    unless the caller already set it.
///
/// Within one thread the collector preserves emission order, and stamps
/// from a strictly-increasing wall clock never tie, so the merged
/// stream is per-thread monotone *and* globally `(t, tid)`-sorted —
/// which is what [`schema::validate_jsonl`] checks for wall-clock
/// traces.
pub fn merge_threads(mut meta: Vec<(String, Json)>, parts: Vec<TraceLog>) -> TraceLog {
    if !meta.iter().any(|(k, _)| k == CLOCK_META_KEY) {
        meta.push((CLOCK_META_KEY.to_string(), Json::Str("wall".to_string())));
    }
    let mut events = Vec::new();
    let mut counters: BTreeMap<(&'static str, &'static str, Option<u64>), u64> = BTreeMap::new();
    for (i, part) in parts.into_iter().enumerate() {
        for mut e in part.events {
            e.tid = Some(e.tid.unwrap_or(i as u64));
            events.push(e);
        }
        for c in part.counters {
            *counters.entry((c.comp, c.name, c.idx)).or_insert(0) += c.value;
        }
    }
    events.sort_by_key(|e| (e.t_ns, e.tid));
    TraceLog {
        meta,
        events,
        counters: counters
            .into_iter()
            .map(|((comp, name, idx), value)| CounterEntry {
                comp,
                name,
                idx,
                value,
            })
            .collect(),
    }
}

/// Emits an instant event at the ambient scope:
/// `event!("trainer", "eval", "metric" => 0.75)`. Field values go
/// through [`Value::from`]; nothing is evaluated when tracing is off.
#[macro_export]
macro_rules! event {
    ($comp:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $comp,
                $name,
                ::core::option::Option::None,
                ::std::vec![$(($k, $crate::Value::from($v))),*],
            );
        }
    };
}

/// Emits a span (an event with a duration in nanoseconds) at the
/// ambient scope: `span!("trainer", "read", dur_ns, "keys" => n)`.
#[macro_export]
macro_rules! span {
    ($comp:expr, $name:expr, $dur:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $comp,
                $name,
                ::core::option::Option::Some($dur),
                ::std::vec![$(($k, $crate::Value::from($v))),*],
            );
        }
    };
}

/// Increments a counter by 1 (or by an explicit delta) at the ambient
/// worker: `count!("cache", "hits")`, `count!("simnet", "bytes", n)`.
#[macro_export]
macro_rules! count {
    ($comp:expr, $name:expr) => {
        $crate::counter_add($comp, $name, 1)
    };
    ($comp:expr, $name:expr, $delta:expr) => {
        $crate::counter_add($comp, $name, $delta)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_macros_are_inert() {
        assert!(!enabled());
        event!("trainer", "eval", "metric" => 0.5);
        count!("cache", "hits");
        let log = finish();
        assert!(log.events.is_empty());
        assert!(log.counters.is_empty());
    }

    #[test]
    fn collects_events_counters_and_scope() {
        start(vec![("run".to_string(), Json::Str("test".to_string()))]);
        set_scope(100, Some(3));
        event!("trainer", "eval", "metric" => 0.5, "iter" => 7u64);
        span!("trainer", "read", 42u64, "keys" => 2usize);
        count!("cache", "hits");
        count!("cache", "hits", 4);
        counter_add_at("ps", "pull", Some(1), 2);
        set_scope(200, None);
        event!("ps", "failover", "shard" => 0u64);
        let log = finish();
        assert!(!enabled());

        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].t_ns, 100);
        assert_eq!(log.events[0].worker, Some(3));
        assert_eq!(log.events[0].dur_ns, None);
        assert_eq!(log.events[1].dur_ns, Some(42));
        assert_eq!(log.events[2].t_ns, 200);
        assert_eq!(log.events[2].worker, None);

        assert_eq!(log.counter("cache", "hits"), 5);
        assert_eq!(log.counter_at("cache", "hits", Some(3)), 5);
        assert_eq!(log.counter_at("ps", "pull", Some(1)), 2);
        assert_eq!(log.counter("ps", "missing"), 0);
        assert_eq!(
            log.components(),
            ["cache", "ps", "trainer"].into_iter().collect()
        );
    }

    #[test]
    fn emit_at_overrides_time_but_keeps_worker() {
        start(vec![]);
        set_scope(500, Some(1));
        emit_at("trainer", "worker_crash", 333, None, vec![]);
        let log = finish();
        assert_eq!(log.events[0].t_ns, 333);
        assert_eq!(log.events[0].worker, Some(1));
    }

    #[test]
    fn jsonl_shape_and_round_trip() {
        start(vec![("seed".to_string(), Json::UInt(7))]);
        set_scope(10, Some(0));
        span!("trainer", "read", 5u64, "keys" => 1u64);
        event!("trainer", "eval", "metric" => 0.25);
        count!("cache", "misses");
        let log = finish();
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"type":"meta","schema":"het-trace-v1","seed":7}"#
        );
        assert_eq!(
            lines[1],
            r#"{"type":"event","t":10,"w":0,"comp":"trainer","name":"read","dur":5,"fields":{"keys":1}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"type":"event","t":10,"w":0,"comp":"trainer","name":"eval","fields":{"metric":0.25}}"#
        );
        assert_eq!(
            lines[3],
            r#"{"type":"counter","comp":"cache","name":"misses","idx":0,"value":1}"#
        );
        // Every line parses back with the in-tree JSON parser.
        for line in lines {
            het_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn counters_are_sorted_deterministically() {
        start(vec![]);
        counter_add_at("ps", "pull", Some(2), 1);
        counter_add_at("cache", "hits", Some(1), 1);
        counter_add_at("ps", "pull", Some(0), 1);
        counter_add_at("ps", "pull", None, 1);
        let log = finish();
        let order: Vec<(&str, &str, Option<u64>)> = log
            .counters
            .iter()
            .map(|c| (c.comp, c.name, c.idx))
            .collect();
        assert_eq!(
            order,
            vec![
                ("cache", "hits", Some(1)),
                ("ps", "pull", None),
                ("ps", "pull", Some(0)),
                ("ps", "pull", Some(2)),
            ]
        );
    }

    #[test]
    fn merge_threads_sums_counters_and_sorts_by_stamp_then_tid() {
        let part = |t0: u64, hits: u64| {
            start(vec![]);
            set_scope(t0, Some(0));
            event!("trainer", "compute");
            set_scope(t0 + 10, Some(0));
            event!("trainer", "compute");
            counter_add("cache", "hits", hits);
            finish()
        };
        let a = part(5, 2); // events at t=5, 15
        let b = part(0, 3); // events at t=0, 10
        let merged = merge_threads(vec![("seed".to_string(), Json::UInt(1))], vec![a, b]);
        let order: Vec<(u64, Option<u64>)> =
            merged.events.iter().map(|e| (e.t_ns, e.tid)).collect();
        assert_eq!(
            order,
            vec![(0, Some(1)), (5, Some(0)), (10, Some(1)), (15, Some(0))]
        );
        assert_eq!(merged.counter("cache", "hits"), 5);
        assert!(merged
            .meta
            .iter()
            .any(|(k, v)| k == CLOCK_META_KEY && *v == Json::Str("wall".to_string())));
        // The tid surfaces in the JSONL line; sim traces (tid: None)
        // never carry the key, so existing fixtures are untouched.
        let jsonl = merged.to_jsonl();
        assert!(jsonl.contains(r#""name":"compute","tid":1,"fields""#));
        let sim = part(0, 1).to_jsonl();
        assert!(!sim.contains("tid"));
    }

    #[test]
    fn start_resets_previous_state() {
        start(vec![]);
        count!("cache", "hits");
        start(vec![]);
        let log = finish();
        assert!(log.counters.is_empty());
    }
}
