//! Chrome `trace_event` export.
//!
//! Converts a [`TraceLog`](crate::TraceLog) into the JSON object format
//! consumed by `chrome://tracing` and Perfetto: spans become complete
//! (`"ph":"X"`) events, instants become `"ph":"i"`, and final counter
//! values are appended as one `"ph":"C"` sample at the end of the
//! timeline. Timestamps are microseconds (the format's unit); the
//! simulated worker index is mapped to the thread id so each worker
//! gets its own track.

use crate::TraceLog;
use het_json::Json;

/// Renders the log as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing`.
pub fn to_chrome_trace(log: &TraceLog) -> String {
    let mut events = Vec::new();
    let mut t_end_us = 0.0f64;
    for e in &log.events {
        let ts = e.t_ns as f64 / 1_000.0;
        let tid = e.worker.unwrap_or(u64::MAX); // global events on their own track
        let mut obj = vec![
            (
                "name".to_string(),
                Json::Str(format!("{}.{}", e.comp, e.name)),
            ),
            ("cat".to_string(), Json::Str(e.comp.to_string())),
            ("pid".to_string(), Json::UInt(0)),
            ("tid".to_string(), Json::UInt(tid)),
            ("ts".to_string(), Json::Num(ts)),
        ];
        match e.dur_ns {
            Some(dur) => {
                let dur_us = dur as f64 / 1_000.0;
                obj.push(("ph".to_string(), Json::Str("X".to_string())));
                obj.push(("dur".to_string(), Json::Num(dur_us)));
                t_end_us = t_end_us.max(ts + dur_us);
            }
            None => {
                obj.push(("ph".to_string(), Json::Str("i".to_string())));
                obj.push(("s".to_string(), Json::Str("t".to_string())));
                t_end_us = t_end_us.max(ts);
            }
        }
        if !e.fields.is_empty() {
            obj.push((
                "args".to_string(),
                Json::Obj(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        events.push(Json::Obj(obj));
    }
    for c in &log.counters {
        let name = match c.idx {
            Some(idx) => format!("{}.{}[{}]", c.comp, c.name, idx),
            None => format!("{}.{}", c.comp, c.name),
        };
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(name)),
            ("cat".to_string(), Json::Str(c.comp.to_string())),
            ("ph".to_string(), Json::Str("C".to_string())),
            ("pid".to_string(), Json::UInt(0)),
            ("tid".to_string(), Json::UInt(0)),
            ("ts".to_string(), Json::Num(t_end_us)),
            (
                "args".to_string(),
                Json::Obj(vec![("value".to_string(), Json::UInt(c.value))]),
            ),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterEntry, TraceEvent, Value};

    #[test]
    fn chrome_export_is_parseable_and_shaped() {
        let log = TraceLog {
            meta: vec![],
            events: vec![
                TraceEvent {
                    t_ns: 2_000,
                    worker: Some(1),
                    comp: "trainer",
                    name: "read",
                    dur_ns: Some(1_500),
                    fields: vec![("keys", Value::UInt(4))],
                },
                TraceEvent {
                    t_ns: 5_000,
                    worker: None,
                    comp: "ps",
                    name: "failover",
                    dur_ns: None,
                    fields: vec![],
                },
            ],
            counters: vec![CounterEntry {
                comp: "cache",
                name: "hits",
                idx: Some(0),
                value: 9,
            }],
        };
        let doc = to_chrome_trace(&log);
        let parsed = het_json::from_str(&doc).unwrap();
        let Json::Obj(fields) = parsed else {
            panic!("expected object")
        };
        let Some((_, Json::Arr(events))) = fields.iter().find(|(k, _)| k == "traceEvents") else {
            panic!("missing traceEvents")
        };
        assert_eq!(events.len(), 3);
        let encoded = doc;
        assert!(encoded.contains(r#""ph":"X""#));
        assert!(encoded.contains(r#""ph":"i""#));
        assert!(encoded.contains(r#""ph":"C""#));
        assert!(encoded.contains(r#""name":"cache.hits[0]""#));
    }
}
