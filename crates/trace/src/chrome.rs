//! Chrome `trace_event` export.
//!
//! Converts a [`TraceLog`](crate::TraceLog) into the JSON object format
//! consumed by `chrome://tracing` and Perfetto: spans become complete
//! (`"ph":"X"`) events, instants become `"ph":"i"`, and final counter
//! values are appended as one `"ph":"C"` sample at the end of the
//! timeline. Timestamps are microseconds (the format's unit); the
//! simulated worker index is mapped to the thread id so each worker
//! gets its own track.

use crate::TraceLog;
use het_json::Json;

/// Training-side components render in process 0; the `serve` component
/// gets its own process lane so request handling reads as a separate
/// swim-lane next to the training timeline, and the `prefetcher` gets
/// one so its in-flight transfer spans visibly overlap the compute
/// spans on the worker tracks beside it.
fn pid_of(comp: &str) -> u64 {
    match comp {
        "serve" => 1,
        "prefetcher" => 2,
        _ => 0,
    }
}

fn process_name(pid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str("process_name".to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::UInt(pid)),
        ("tid".to_string(), Json::UInt(0)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        ),
    ])
}

/// Renders the log as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing`.
pub fn to_chrome_trace(log: &TraceLog) -> String {
    let mut events = Vec::new();
    // Only label the process lanes when an extra lane is actually in
    // use — single-process training traces stay exactly as before.
    let uses = |comp: &str| {
        log.events.iter().any(|e| e.comp == comp) || log.counters.iter().any(|c| c.comp == comp)
    };
    let has_serve = uses("serve");
    let has_prefetch = uses("prefetcher");
    if has_serve || has_prefetch {
        events.push(process_name(0, "het-train"));
    }
    if has_serve {
        events.push(process_name(1, "het-serve"));
    }
    if has_prefetch {
        events.push(process_name(2, "het-prefetch"));
    }
    let mut t_end_us = 0.0f64;
    for e in &log.events {
        let ts = e.t_ns as f64 / 1_000.0;
        let tid = e.worker.unwrap_or(u64::MAX); // global events on their own track
        let mut obj = vec![
            (
                "name".to_string(),
                Json::Str(format!("{}.{}", e.comp, e.name)),
            ),
            ("cat".to_string(), Json::Str(e.comp.to_string())),
            ("pid".to_string(), Json::UInt(pid_of(e.comp))),
            ("tid".to_string(), Json::UInt(tid)),
            ("ts".to_string(), Json::Num(ts)),
        ];
        match e.dur_ns {
            Some(dur) => {
                let dur_us = dur as f64 / 1_000.0;
                obj.push(("ph".to_string(), Json::Str("X".to_string())));
                obj.push(("dur".to_string(), Json::Num(dur_us)));
                t_end_us = t_end_us.max(ts + dur_us);
            }
            None => {
                obj.push(("ph".to_string(), Json::Str("i".to_string())));
                obj.push(("s".to_string(), Json::Str("t".to_string())));
                t_end_us = t_end_us.max(ts);
            }
        }
        if !e.fields.is_empty() {
            obj.push((
                "args".to_string(),
                Json::Obj(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        events.push(Json::Obj(obj));
    }
    for c in &log.counters {
        let name = match c.idx {
            Some(idx) => format!("{}.{}[{}]", c.comp, c.name, idx),
            None => format!("{}.{}", c.comp, c.name),
        };
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(name)),
            ("cat".to_string(), Json::Str(c.comp.to_string())),
            ("ph".to_string(), Json::Str("C".to_string())),
            ("pid".to_string(), Json::UInt(pid_of(c.comp))),
            ("tid".to_string(), Json::UInt(0)),
            ("ts".to_string(), Json::Num(t_end_us)),
            (
                "args".to_string(),
                Json::Obj(vec![("value".to_string(), Json::UInt(c.value))]),
            ),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterEntry, TraceEvent, Value};

    #[test]
    fn chrome_export_is_parseable_and_shaped() {
        let log = TraceLog {
            meta: vec![],
            events: vec![
                TraceEvent {
                    t_ns: 2_000,
                    worker: Some(1),
                    tid: None,
                    comp: "trainer",
                    name: "read",
                    dur_ns: Some(1_500),
                    fields: vec![("keys", Value::UInt(4))],
                },
                TraceEvent {
                    t_ns: 5_000,
                    worker: None,
                    tid: None,
                    comp: "ps",
                    name: "failover",
                    dur_ns: None,
                    fields: vec![],
                },
            ],
            counters: vec![CounterEntry {
                comp: "cache",
                name: "hits",
                idx: Some(0),
                value: 9,
            }],
        };
        let doc = to_chrome_trace(&log);
        let parsed = het_json::from_str(&doc).unwrap();
        let Json::Obj(fields) = parsed else {
            panic!("expected object")
        };
        let Some((_, Json::Arr(events))) = fields.iter().find(|(k, _)| k == "traceEvents") else {
            panic!("missing traceEvents")
        };
        assert_eq!(events.len(), 3);
        let encoded = doc;
        assert!(encoded.contains(r#""ph":"X""#));
        assert!(encoded.contains(r#""ph":"i""#));
        assert!(encoded.contains(r#""ph":"C""#));
        assert!(encoded.contains(r#""name":"cache.hits[0]""#));
        // No serve items ⇒ no process metadata, single pid-0 lane.
        assert!(!encoded.contains(r#""ph":"M""#));
        assert!(!encoded.contains(r#""pid":1"#));
    }

    #[test]
    fn serve_events_get_their_own_process_lane() {
        let log = TraceLog {
            meta: vec![],
            events: vec![
                TraceEvent {
                    t_ns: 1_000,
                    worker: Some(0),
                    tid: None,
                    comp: "trainer",
                    name: "iteration",
                    dur_ns: Some(500),
                    fields: vec![],
                },
                TraceEvent {
                    t_ns: 2_000,
                    worker: Some(1),
                    tid: None,
                    comp: "serve",
                    name: "batch",
                    dur_ns: Some(700),
                    fields: vec![("n", Value::UInt(3))],
                },
            ],
            counters: vec![CounterEntry {
                comp: "serve",
                name: "requests",
                idx: Some(1),
                value: 3,
            }],
        };
        let doc = to_chrome_trace(&log);
        let parsed = het_json::from_str(&doc).unwrap();
        let Json::Obj(fields) = parsed else {
            panic!("expected object")
        };
        let Some((_, Json::Arr(events))) = fields.iter().find(|(k, _)| k == "traceEvents") else {
            panic!("missing traceEvents")
        };
        // 2 process_name metadata + 2 events + 1 counter.
        assert_eq!(events.len(), 5);
        assert!(doc.contains(r#""name":"het-serve""#));
        assert!(doc.contains(r#""name":"het-train""#));
        // The serve span and counter sit in pid 1; the trainer in pid 0.
        let pid_of_named = |needle: &str| {
            events
                .iter()
                .find_map(|e| {
                    let Json::Obj(o) = e else { return None };
                    let name = o.iter().find(|(k, _)| k == "name")?;
                    if matches!(&name.1, Json::Str(s) if s.contains(needle)) {
                        o.iter().find(|(k, _)| k == "pid").map(|(_, v)| v.clone())
                    } else {
                        None
                    }
                })
                .unwrap()
        };
        assert_eq!(pid_of_named("serve.batch"), Json::UInt(1));
        assert_eq!(pid_of_named("serve.requests"), Json::UInt(1));
        assert_eq!(pid_of_named("trainer.iteration"), Json::UInt(0));
    }
}
