//! xDeepFM (Lian et al., KDD'18) — cited by the paper (§2.2) as one of
//! the embedding-model family; included as a scope extension beyond the
//! three evaluated DLRM models.
//!
//! The distinctive part is the **Compressed Interaction Network** (CIN):
//! explicit vector-wise high-order interactions. With per-example field
//! matrix `X⁰ ∈ ℝ^{F×D}`, layer k computes, independently per embedding
//! dimension `d`,
//!
//! ```text
//! Xᵏ[:,d] = Wᵏ · vec( Xᵏ⁻¹[:,d] ⊗ X⁰[:,d] )        Wᵏ ∈ ℝ^{Hₖ × Hₖ₋₁·F}
//! ```
//!
//! each layer's output is sum-pooled over `d` and the pooled features of
//! all layers feed the logit next to a deep MLP and a first-order term.

use crate::ctr_common::{build_inputs, scatter_grads};
use crate::store::{EmbeddingStore, SparseGrads};
use crate::{EmbeddingModel, EvalChunk, MetricKind};
use het_data::CtrBatch;
use het_rng::Rng;
use het_tensor::loss::bce_with_logits;
use het_tensor::{HasParams, Linear, Matrix, Mlp, ParamVisitor};

/// One CIN layer's parameters: `weight[h]` is the `H_prev·F` filter of
/// output feature map `h`, stored row-major as a Matrix (H × H_prev·F).
struct CinLayer {
    weight: Matrix,
    grad: Matrix,
    h_prev: usize,
    h_out: usize,
}

impl CinLayer {
    fn new<R: Rng>(rng: &mut R, fields: usize, h_prev: usize, h_out: usize) -> Self {
        let weight = het_tensor::init::xavier_uniform(rng, h_out, h_prev * fields);
        let grad = Matrix::zeros(h_out, h_prev * fields);
        CinLayer {
            weight,
            grad,
            h_prev,
            h_out,
        }
    }
}

/// The xDeepFM CTR model: CIN + deep MLP + first-order term over shared
/// field embeddings.
pub struct XDeepFm {
    n_fields: usize,
    dim: usize,
    cin: Vec<CinLayer>,
    /// Linear head over the concatenated sum-pooled CIN features.
    cin_out: Linear,
    deep: Mlp,
    first_order: Linear,
}

/// Per-example activations of the CIN, kept for backward.
struct CinState {
    /// `maps[k]` is X^k for every example: batch × (H_k × D).
    maps: Vec<Vec<Matrix>>,
}

impl XDeepFm {
    /// Builds the model with CIN feature-map sizes `cin_sizes`
    /// (e.g. `[8, 8]` for two interaction orders) and deep widths
    /// `hidden`.
    ///
    /// # Panics
    /// Panics if `cin_sizes` is empty.
    pub fn new<R: Rng>(
        rng: &mut R,
        n_fields: usize,
        dim: usize,
        cin_sizes: &[usize],
        hidden: &[usize],
    ) -> Self {
        assert!(!cin_sizes.is_empty(), "CIN needs at least one layer");
        let mut cin = Vec::with_capacity(cin_sizes.len());
        let mut h_prev = n_fields;
        for &h in cin_sizes {
            cin.push(CinLayer::new(rng, n_fields, h_prev, h));
            h_prev = h;
        }
        let pooled: usize = cin_sizes.iter().sum();
        let mut dims = vec![n_fields * dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        XDeepFm {
            n_fields,
            dim,
            cin,
            cin_out: Linear::new(rng, pooled, 1),
            deep: Mlp::new(rng, &dims),
            first_order: Linear::new(rng, dim, 1),
        }
    }

    /// Number of categorical fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    /// Reshapes the flat `(batch × F·D)` input into per-example `F×D`
    /// field matrices.
    fn field_matrices(&self, x: &Matrix) -> Vec<Matrix> {
        (0..x.rows())
            .map(|i| Matrix::from_vec(self.n_fields, self.dim, x.row(i).to_vec()))
            .collect()
    }

    /// CIN forward for the whole batch; returns the pooled features
    /// `(batch × Σ H_k)` and the per-layer activations.
    fn cin_forward(&self, x0: &[Matrix]) -> (Matrix, CinState) {
        let batch = x0.len();
        let pooled_width: usize = self.cin.iter().map(|l| l.h_out).sum();
        let mut pooled = Matrix::zeros(batch, pooled_width);
        let mut maps: Vec<Vec<Matrix>> = Vec::with_capacity(self.cin.len());

        for (k, layer) in self.cin.iter().enumerate() {
            let mut layer_maps = Vec::with_capacity(batch);
            for (i, x0_i) in x0.iter().enumerate() {
                let prev: &Matrix = if k == 0 { x0_i } else { &maps[k - 1][i] };
                let mut out = Matrix::zeros(layer.h_out, self.dim);
                for d in 0..self.dim {
                    // z = vec(prev[:,d] ⊗ x0[:,d]), then out[:,d] = W·z.
                    for h in 0..layer.h_out {
                        let w_row = layer.weight.row(h);
                        let mut acc = 0.0f32;
                        for p in 0..layer.h_prev {
                            let pv = prev.get(p, d);
                            if pv == 0.0 {
                                continue;
                            }
                            let base = p * self.n_fields;
                            for f in 0..self.n_fields {
                                acc += w_row[base + f] * pv * x0_i.get(f, d);
                            }
                        }
                        out.set(h, d, acc);
                    }
                }
                layer_maps.push(out);
            }
            maps.push(layer_maps);
        }

        // Sum-pool each layer over D into the pooled feature block.
        let mut col0 = 0usize;
        for (k, layer) in self.cin.iter().enumerate() {
            for (i, m) in maps[k].iter().enumerate().take(batch) {
                for h in 0..layer.h_out {
                    let s: f32 = (0..self.dim).map(|d| m.get(h, d)).sum();
                    pooled.set(i, col0 + h, s);
                }
            }
            col0 += layer.h_out;
        }
        (pooled, CinState { maps })
    }

    /// CIN backward: `dpooled` is `(batch × Σ H_k)`; accumulates the
    /// layer weight grads and returns `dX0` per example.
    fn cin_backward(&mut self, x0: &[Matrix], state: &CinState, dpooled: &Matrix) -> Vec<Matrix> {
        let batch = x0.len();
        let (dim, n_fields) = (self.dim, self.n_fields);
        let mut dx0: Vec<Matrix> = x0
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        // dmaps[i] holds the running gradient w.r.t. X^k for the layer
        // currently being processed (top-down).
        let mut dmaps: Vec<Option<Matrix>> = vec![None; batch];

        // Walk layers top-down; each layer first receives its pooled
        // gradient (broadcast over d), plus whatever flowed from above.
        let layer_offsets: Vec<usize> = {
            let mut offs = Vec::with_capacity(self.cin.len());
            let mut acc = 0;
            for l in &self.cin {
                offs.push(acc);
                acc += l.h_out;
            }
            offs
        };

        for k in (0..self.cin.len()).rev() {
            let (h_out, h_prev) = (self.cin[k].h_out, self.cin[k].h_prev);
            let col0 = layer_offsets[k];
            let mut next_dmaps: Vec<Option<Matrix>> = vec![None; batch];
            for i in 0..batch {
                // Gradient at this layer's output.
                let mut dxk = match dmaps[i].take() {
                    Some(m) => m,
                    None => Matrix::zeros(h_out, dim),
                };
                for h in 0..h_out {
                    let g = dpooled.get(i, col0 + h);
                    for d in 0..dim {
                        let v = dxk.get(h, d) + g;
                        dxk.set(h, d, v);
                    }
                }

                let prev: &Matrix = if k == 0 {
                    &x0[i]
                } else {
                    &state.maps[k - 1][i]
                };
                let mut dprev = Matrix::zeros(h_prev, dim);
                let x0_i = &x0[i];
                {
                    let layer = &mut self.cin[k];
                    for d in 0..dim {
                        for h in 0..h_out {
                            let g = dxk.get(h, d);
                            if g == 0.0 {
                                continue;
                            }
                            let w_row = layer.weight.row(h);
                            let g_row = layer.grad.row_mut(h);
                            for p in 0..h_prev {
                                let pv = prev.get(p, d);
                                let base = p * n_fields;
                                let mut dp = 0.0f32;
                                for f in 0..n_fields {
                                    let xv = x0_i.get(f, d);
                                    // dW
                                    g_row[base + f] += g * pv * xv;
                                    // dprev via W
                                    dp += w_row[base + f] * xv;
                                    // dx0
                                    let cur = dx0[i].get(f, d);
                                    dx0[i].set(f, d, cur + g * w_row[base + f] * pv);
                                }
                                let cur = dprev.get(p, d);
                                dprev.set(p, d, cur + g * dp);
                            }
                        }
                    }
                }
                if k == 0 {
                    dx0[i].axpy(1.0, &dprev);
                } else {
                    next_dmaps[i] = Some(dprev);
                }
            }
            dmaps = next_dmaps;
        }
        dx0
    }

    fn logits_inference(&self, x: &Matrix, sum: &Matrix) -> Matrix {
        let x0 = self.field_matrices(x);
        let (pooled, _) = self.cin_forward(&x0);
        let mut out = self.cin_out.forward_inference(&pooled);
        out.axpy(1.0, &self.deep.forward_inference(x));
        out.axpy(1.0, &self.first_order.forward_inference(sum));
        out
    }
}

impl HasParams for XDeepFm {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        for layer in &mut self.cin {
            v.visit(layer.weight.as_mut_slice(), layer.grad.as_mut_slice());
        }
        self.cin_out.visit_params(v);
        self.deep.visit_params(v);
        self.first_order.visit_params(v);
    }
}

impl EmbeddingModel for XDeepFm {
    type Batch = CtrBatch;

    fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(
        &mut self,
        batch: &CtrBatch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads) {
        assert_eq!(
            batch.n_fields, self.n_fields,
            "batch/model field count mismatch"
        );
        let (x, sum) = build_inputs(batch, embeddings);
        let x0 = self.field_matrices(&x);

        let (pooled, state) = self.cin_forward(&x0);
        let mut logits = self.cin_out.forward(&pooled);
        logits.axpy(1.0, &self.deep.forward(&x));
        logits.axpy(1.0, &self.first_order.forward(&sum));

        let (loss, dlogits) = bce_with_logits(&logits, &batch.labels);

        let dpooled = self.cin_out.backward(&dlogits);
        let dx0 = self.cin_backward(&x0, &state, &dpooled);
        let mut dx = self.deep.backward(&dlogits);
        // Fold the CIN's per-example F×D gradients back into the flat
        // (batch × F·D) layout.
        for (i, dxi) in dx0.iter().enumerate() {
            let row = dx.row_mut(i);
            for (dst, &src) in row.iter_mut().zip(dxi.as_slice()) {
                *dst += src;
            }
        }
        let dsum = self.first_order.backward(&dlogits);

        let mut grads = SparseGrads::new(self.dim);
        scatter_grads(batch, Some(&dx), Some(&dsum), &mut grads);
        (loss, grads)
    }

    fn evaluate(&self, batch: &CtrBatch, embeddings: &EmbeddingStore) -> EvalChunk {
        let (x, sum) = build_inputs(batch, embeddings);
        let logits = self.logits_inference(&x, &sum);
        let scores = logits
            .as_slice()
            .iter()
            .map(|&z| het_tensor::activation::sigmoid(z))
            .collect();
        EvalChunk {
            scores,
            labels: batch.labels.clone(),
        }
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::Auc
    }

    fn flops_per_batch(&self, n: usize) -> f64 {
        let cin: f64 = self
            .cin
            .iter()
            .map(|l| 6.0 * (l.h_out * l.h_prev * self.n_fields * self.dim) as f64)
            .sum();
        cin * n as f64 + self.deep.flops(n) + self.cin_out.flops(n) + self.first_order.flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{CtrConfig, CtrDataset};
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;
    use het_tensor::Sgd;

    fn resolve(batch: &CtrBatch, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim);
        for k in batch.unique_keys() {
            let v: Vec<f32> = (0..dim)
                .map(|i| {
                    let h = k
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(i as u64 * 11);
                    ((h % 977) as f32 / 977.0 - 0.5) * 0.4
                })
                .collect();
            store.insert(k, v);
        }
        store
    }

    #[test]
    fn cin_first_layer_matches_pairwise_products() {
        // One CIN layer with a single feature map whose weights are all
        // ones computes, per d, Σ_{p,f} x0[p,d]·x0[f,d] = (Σ_f x0[f,d])².
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = XDeepFm::new(&mut rng, 2, 2, &[1], &[4]);
        for h in 0..1 {
            for c in 0..model.cin[0].weight.cols() {
                model.cin[0].weight.set(h, c, 1.0);
            }
        }
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]); // fields (1,2),(3,4)
        let x0 = model.field_matrices(&x);
        let (pooled, _) = model.cin_forward(&x0);
        // d=0: (1+3)² = 16 ; d=1: (2+4)² = 36 ; pooled = 52.
        assert!((pooled.get(0, 0) - 52.0).abs() < 1e-4);
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let ds = CtrDataset::new(CtrConfig::tiny(57));
        let batch = ds.train_batch(2, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = XDeepFm::new(&mut rng, 4, 4, &[3, 2], &[8]);
        let mut store = resolve(&batch, 4);
        model.zero_grads();
        let (_, grads) = model.forward_backward(&batch, &store);
        model.zero_grads();

        let key = batch.unique_keys()[0];
        let comp = 1usize;
        let eps = 1e-3f32;
        let orig = store.get(key).to_vec();

        let mut p = orig.clone();
        p[comp] += eps;
        store.insert(key, p);
        let (x, sum) = build_inputs(&batch, &store);
        let lp = bce_with_logits(&model.logits_inference(&x, &sum), &batch.labels).0;

        let mut m = orig.clone();
        m[comp] -= eps;
        store.insert(key, m);
        let (x, sum) = build_inputs(&batch, &store);
        let lm = bce_with_logits(&model.logits_inference(&x, &sum), &batch.labels).0;

        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads.get(key).unwrap()[comp];
        assert!(
            (numeric - analytic).abs() < 2e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn cin_weight_gradient_matches_finite_difference() {
        let ds = CtrDataset::new(CtrConfig::tiny(59));
        let batch = ds.train_batch(1, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = XDeepFm::new(&mut rng, 4, 3, &[2], &[4]);
        let store = resolve(&batch, 3);
        model.zero_grads();
        let _ = model.forward_backward(&batch, &store);
        let analytic = model.cin[0].grad.get(0, 3);
        model.zero_grads();

        let eps = 1e-3f32;
        let orig = model.cin[0].weight.get(0, 3);
        let (x, sum) = build_inputs(&batch, &store);
        model.cin[0].weight.set(0, 3, orig + eps);
        let lp = bce_with_logits(&model.logits_inference(&x, &sum), &batch.labels).0;
        model.cin[0].weight.set(0, 3, orig - eps);
        let lm = bce_with_logits(&model.logits_inference(&x, &sum), &batch.labels).0;
        model.cin[0].weight.set(0, 3, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn loss_decreases_under_training() {
        let ds = CtrDataset::new(CtrConfig::tiny(61));
        let batch = ds.train_batch(0, 32);
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = XDeepFm::new(&mut rng, 4, 8, &[4, 4], &[16]);
        let store = resolve(&batch, 8);
        let sgd = Sgd::new(0.02);
        let (first, _) = model.forward_backward(&batch, &store);
        sgd.step(&mut model);
        let mut last = first;
        for _ in 0..30 {
            let (l, _) = model.forward_backward(&batch, &store);
            sgd.step(&mut model);
            last = l;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn param_count_includes_cin_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = XDeepFm::new(&mut rng, 4, 8, &[3, 2], &[8]);
        // CIN: 3×(4·4) + 2×(3·4) = 48 + 24 = 72; plus cin_out (5+1)=6;
        // deep (32·8+8)+(8·1+1)=273; first (8+1)=9 → 360.
        assert_eq!(model.n_params(), 72 + 6 + 273 + 9);
        assert!(model.flops_per_batch(16) > 0.0);
        assert_eq!(model.metric_kind(), MetricKind::Auc);
        assert_eq!(model.n_fields(), 4);
    }
}
