//! DeepFM (Guo et al., IJCAI'17) — the paper's DFM workload.
//!
//! Three additive components over the shared field embeddings:
//! a deep MLP on the concatenated embeddings, the FM pairwise
//! interaction, and a first-order term (a learned projection of the
//! summed embeddings, standing in for per-feature scalar weights — see
//! DESIGN.md §6).

use crate::ctr_common::{build_inputs, scatter_grads};
use crate::store::{EmbeddingStore, SparseGrads};
use crate::{EmbeddingModel, EvalChunk, MetricKind};
use het_data::CtrBatch;
use het_rng::Rng;
use het_tensor::loss::bce_with_logits;
use het_tensor::{FmInteraction, HasParams, Linear, Matrix, Mlp, ParamVisitor};

/// The DeepFM CTR model.
pub struct DeepFm {
    n_fields: usize,
    dim: usize,
    deep: Mlp,
    fm: FmInteraction,
    first_order: Linear,
}

impl DeepFm {
    /// Builds the model.
    pub fn new<R: Rng>(rng: &mut R, n_fields: usize, dim: usize, hidden: &[usize]) -> Self {
        let mut dims = vec![n_fields * dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        DeepFm {
            n_fields,
            dim,
            deep: Mlp::new(rng, &dims),
            fm: FmInteraction::new(n_fields, dim),
            first_order: Linear::new(rng, dim, 1),
        }
    }

    /// Number of categorical fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    fn logits(&self, x: &Matrix, sum: &Matrix) -> Matrix {
        let mut out = self.deep.forward_inference(x);
        out.axpy(1.0, &self.fm.forward_inference(x));
        out.axpy(1.0, &self.first_order.forward_inference(sum));
        out
    }
}

impl HasParams for DeepFm {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.deep.visit_params(v);
        self.first_order.visit_params(v);
    }
}

impl EmbeddingModel for DeepFm {
    type Batch = CtrBatch;

    fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(
        &mut self,
        batch: &CtrBatch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads) {
        assert_eq!(
            batch.n_fields, self.n_fields,
            "batch/model field count mismatch"
        );
        let (x, sum) = build_inputs(batch, embeddings);
        let mut logits = self.deep.forward(&x);
        logits.axpy(1.0, &self.fm.forward(&x));
        logits.axpy(1.0, &self.first_order.forward(&sum));

        let (loss, dlogits) = bce_with_logits(&logits, &batch.labels);

        let mut dx = self.deep.backward(&dlogits);
        dx.axpy(1.0, &self.fm.backward(&dlogits));
        let dsum = self.first_order.backward(&dlogits);

        let mut grads = SparseGrads::new(self.dim);
        scatter_grads(batch, Some(&dx), Some(&dsum), &mut grads);
        (loss, grads)
    }

    fn evaluate(&self, batch: &CtrBatch, embeddings: &EmbeddingStore) -> EvalChunk {
        let (x, sum) = build_inputs(batch, embeddings);
        let logits = self.logits(&x, &sum);
        let scores = logits
            .as_slice()
            .iter()
            .map(|&z| het_tensor::activation::sigmoid(z))
            .collect();
        EvalChunk {
            scores,
            labels: batch.labels.clone(),
        }
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::Auc
    }

    fn flops_per_batch(&self, n: usize) -> f64 {
        self.deep.flops(n) + self.fm.flops(n) + self.first_order.flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{CtrConfig, CtrDataset};
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;
    use het_tensor::Sgd;

    fn resolve(batch: &CtrBatch, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim);
        for k in batch.unique_keys() {
            let v: Vec<f32> = (0..dim)
                .map(|i| {
                    let h = k
                        .wrapping_mul(0x2545F4914F6CDD1D)
                        .wrapping_add(i as u64 * 7);
                    ((h % 997) as f32 / 997.0 - 0.5) * 0.3
                })
                .collect();
            store.insert(k, v);
        }
        store
    }

    #[test]
    fn loss_decreases_under_training() {
        let ds = CtrDataset::new(CtrConfig::tiny(21));
        let batch = ds.train_batch(0, 64);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = DeepFm::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&batch, 8);
        let sgd = Sgd::new(0.05);
        let (first, _) = model.forward_backward(&batch, &store);
        sgd.step(&mut model);
        let mut last = first;
        for _ in 0..30 {
            let (l, _) = model.forward_backward(&batch, &store);
            sgd.step(&mut model);
            last = l;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let ds = CtrDataset::new(CtrConfig::tiny(31));
        let batch = ds.train_batch(1, 4);
        let mut rng = StdRng::seed_from_u64(8);
        let mut model = DeepFm::new(&mut rng, 4, 4, &[8]);
        let mut store = resolve(&batch, 4);
        model.zero_grads();
        let (_, grads) = model.forward_backward(&batch, &store);
        model.zero_grads();

        let key = batch.unique_keys()[1];
        let comp = 2usize;
        let eps = 1e-3f32;
        let orig = store.get(key).to_vec();

        let mut p = orig.clone();
        p[comp] += eps;
        store.insert(key, p);
        let (x, sum) = build_inputs(&batch, &store);
        let lp = bce_with_logits(&model.logits(&x, &sum), &batch.labels).0;

        let mut m = orig.clone();
        m[comp] -= eps;
        store.insert(key, m);
        let (x, sum) = build_inputs(&batch, &store);
        let lm = bce_with_logits(&model.logits(&x, &sum), &batch.labels).0;

        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads.get(key).unwrap()[comp];
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn fm_term_contributes_to_logit() {
        // With the deep tower zeroed out, logits must still vary with
        // embeddings through the FM term.
        let ds = CtrDataset::new(CtrConfig::tiny(2));
        let batch = ds.train_batch(0, 8);
        let mut rng = StdRng::seed_from_u64(6);
        let model = DeepFm::new(&mut rng, 4, 8, &[16]);
        let store_a = resolve(&batch, 8);
        let chunk_a = model.evaluate(&batch, &store_a);
        // Different embeddings -> different scores.
        let mut store_b = EmbeddingStore::new(8);
        for k in batch.unique_keys() {
            store_b.insert(k, vec![0.05; 8]);
        }
        let chunk_b = model.evaluate(&batch, &store_b);
        assert_ne!(chunk_a.scores, chunk_b.scores);
    }

    #[test]
    fn grads_cover_unique_keys() {
        let ds = CtrDataset::new(CtrConfig::tiny(2));
        let batch = ds.train_batch(0, 16);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = DeepFm::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&batch, 8);
        let (loss, grads) = model.forward_backward(&batch, &store);
        assert!(loss.is_finite());
        assert_eq!(grads.len(), batch.unique_keys().len());
        assert!(model.flops_per_batch(64) > 0.0);
        assert_eq!(model.metric_kind(), MetricKind::Auc);
    }
}
