//! Deep & Cross Network (Wang et al., ADKDD'17) — the paper's DCN
//! workload.
//!
//! A stack of cross layers and a deep MLP run in parallel over the
//! concatenated field embeddings; their outputs are concatenated and
//! projected to the logit. DCN has the most dense parameters of the
//! three CTR models, which is why the paper's Fig. 7 shows the pure-PS
//! baselines suffering most on it.

use crate::ctr_common::{build_inputs, scatter_grads};
use crate::store::{EmbeddingStore, SparseGrads};
use crate::{EmbeddingModel, EvalChunk, MetricKind};
use het_data::CtrBatch;
use het_rng::Rng;
use het_tensor::loss::bce_with_logits;
use het_tensor::{CrossLayer, HasParams, Linear, Matrix, Mlp, ParamVisitor};

/// The Deep & Cross CTR model.
pub struct DeepCross {
    n_fields: usize,
    dim: usize,
    cross: Vec<CrossLayer>,
    deep: Mlp,
    combine: Linear,
}

impl DeepCross {
    /// Builds the model with `n_cross` cross layers and deep widths
    /// `hidden` (the final hidden width feeds the combiner).
    ///
    /// # Panics
    /// Panics if `hidden` is empty or `n_cross` is zero.
    pub fn new<R: Rng>(
        rng: &mut R,
        n_fields: usize,
        dim: usize,
        n_cross: usize,
        hidden: &[usize],
    ) -> Self {
        assert!(n_cross > 0, "DCN needs at least one cross layer");
        assert!(
            !hidden.is_empty(),
            "DCN needs at least one deep hidden layer"
        );
        let width = n_fields * dim;
        let cross = (0..n_cross).map(|_| CrossLayer::new(rng, width)).collect();
        let mut dims = vec![width];
        dims.extend_from_slice(hidden);
        let deep = Mlp::new(rng, &dims);
        let combine = Linear::new(rng, width + hidden[hidden.len() - 1], 1);
        DeepCross {
            n_fields,
            dim,
            cross,
            deep,
            combine,
        }
    }

    /// Number of categorical fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    /// Number of cross layers.
    pub fn n_cross(&self) -> usize {
        self.cross.len()
    }

    fn logits_inference(&self, x: &Matrix) -> Matrix {
        let mut xl = x.clone();
        for layer in &self.cross {
            xl = layer.forward_inference(x, &xl);
        }
        let deep_out = self.deep.forward_inference(x);
        // Deep tower ends in a ReLU'd hidden layer in inference parity
        // with forward(): Mlp applies ReLU between layers only, so the
        // final hidden output is linear; apply ReLU to match forward().
        let combined = xl.hcat(&relu(deep_out));
        self.combine.forward_inference(&combined)
    }
}

fn relu(mut m: Matrix) -> Matrix {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    m
}

impl HasParams for DeepCross {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        for layer in &mut self.cross {
            layer.visit_params(v);
        }
        self.deep.visit_params(v);
        self.combine.visit_params(v);
    }
}

impl EmbeddingModel for DeepCross {
    type Batch = CtrBatch;

    fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(
        &mut self,
        batch: &CtrBatch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads) {
        assert_eq!(
            batch.n_fields, self.n_fields,
            "batch/model field count mismatch"
        );
        let (x, _) = build_inputs(batch, embeddings);
        let width = x.cols();

        // Cross tower.
        let mut xl = x.clone();
        for layer in &mut self.cross {
            xl = layer.forward(&x, &xl);
        }
        // Deep tower with an output ReLU (so inference parity is simple).
        let deep_hidden = self.deep.forward(&x);
        let mut deep_mask = Matrix::zeros(deep_hidden.rows(), deep_hidden.cols());
        let mut deep_out = deep_hidden;
        for (v, m) in deep_out
            .as_mut_slice()
            .iter_mut()
            .zip(deep_mask.as_mut_slice())
        {
            if *v > 0.0 {
                *m = 1.0;
            } else {
                *v = 0.0;
            }
        }

        let combined = xl.hcat(&deep_out);
        let logits = self.combine.forward(&combined);
        let (loss, dlogits) = bce_with_logits(&logits, &batch.labels);

        // Backward through the combiner and split the gradient.
        let dcombined = self.combine.backward(&dlogits);
        let (mut dxl, mut ddeep) = dcombined.hsplit(width);

        // Deep tower backward (through the output ReLU).
        for (g, &m) in ddeep.as_mut_slice().iter_mut().zip(deep_mask.as_slice()) {
            *g *= m;
        }
        let dx_deep = self.deep.backward(&ddeep);

        // Cross tower backward: walk layers in reverse, accumulating the
        // x0 contributions every layer produces.
        let mut dx0_total = Matrix::zeros(x.rows(), width);
        for layer in self.cross.iter_mut().rev() {
            let (dx0, dxl_prev) = layer.backward(&dxl);
            dx0_total.axpy(1.0, &dx0);
            dxl = dxl_prev;
        }
        // After the loop, dxl is the gradient w.r.t. the cross input x.
        let mut dx = dx_deep;
        dx.axpy(1.0, &dx0_total);
        dx.axpy(1.0, &dxl);

        let mut grads = SparseGrads::new(self.dim);
        scatter_grads(batch, Some(&dx), None, &mut grads);
        (loss, grads)
    }

    fn evaluate(&self, batch: &CtrBatch, embeddings: &EmbeddingStore) -> EvalChunk {
        let (x, _) = build_inputs(batch, embeddings);
        let logits = self.logits_inference(&x);
        let scores = logits
            .as_slice()
            .iter()
            .map(|&z| het_tensor::activation::sigmoid(z))
            .collect();
        EvalChunk {
            scores,
            labels: batch.labels.clone(),
        }
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::Auc
    }

    fn flops_per_batch(&self, n: usize) -> f64 {
        let cross: f64 = self.cross.iter().map(|c| c.flops(n)).sum();
        cross + self.deep.flops(n) + self.combine.flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{CtrConfig, CtrDataset};
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;
    use het_tensor::Sgd;

    fn resolve(batch: &CtrBatch, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim);
        for k in batch.unique_keys() {
            let v: Vec<f32> = (0..dim)
                .map(|i| {
                    let h = k
                        .wrapping_mul(0xBF58476D1CE4E5B9)
                        .wrapping_add(i as u64 * 13);
                    ((h % 991) as f32 / 991.0 - 0.5) * 0.3
                })
                .collect();
            store.insert(k, v);
        }
        store
    }

    #[test]
    fn loss_decreases_under_training() {
        let ds = CtrDataset::new(CtrConfig::tiny(41));
        let batch = ds.train_batch(0, 64);
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = DeepCross::new(&mut rng, 4, 8, 2, &[16]);
        let store = resolve(&batch, 8);
        let sgd = Sgd::new(0.05);
        let (first, _) = model.forward_backward(&batch, &store);
        sgd.step(&mut model);
        let mut last = first;
        for _ in 0..30 {
            let (l, _) = model.forward_backward(&batch, &store);
            sgd.step(&mut model);
            last = l;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn forward_and_inference_logits_agree() {
        let ds = CtrDataset::new(CtrConfig::tiny(43));
        let batch = ds.train_batch(0, 8);
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = DeepCross::new(&mut rng, 4, 8, 3, &[16, 8]);
        let store = resolve(&batch, 8);
        // Run evaluate (inference path) before and compare to the logits
        // produced by the training path via loss gradient reconstruction:
        // simplest check — evaluate twice is stable, and forward_backward
        // on the same weights yields the same loss as recomputing from
        // evaluate's scores.
        let chunk = model.evaluate(&batch, &store);
        let (loss, _) = model.forward_backward(&batch, &store);
        let probs: Vec<f32> = chunk.scores;
        let manual: f64 = probs
            .iter()
            .zip(&batch.labels)
            .map(|(&p, &y)| {
                let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
                if y > 0.5 {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum::<f64>()
            / probs.len() as f64;
        assert!(
            (loss as f64 - manual).abs() < 1e-4,
            "training loss {loss} vs inference-derived {manual}"
        );
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let ds = CtrDataset::new(CtrConfig::tiny(47));
        let batch = ds.train_batch(2, 4);
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = DeepCross::new(&mut rng, 4, 4, 2, &[8]);
        let mut store = resolve(&batch, 4);
        model.zero_grads();
        let (_, grads) = model.forward_backward(&batch, &store);
        model.zero_grads();

        let key = batch.unique_keys()[0];
        let comp = 0usize;
        let eps = 1e-3f32;
        let orig = store.get(key).to_vec();

        let mut p = orig.clone();
        p[comp] += eps;
        store.insert(key, p);
        let (x, _) = build_inputs(&batch, &store);
        let lp = bce_with_logits(&model.logits_inference(&x), &batch.labels).0;

        let mut m = orig.clone();
        m[comp] -= eps;
        store.insert(key, m);
        let (x, _) = build_inputs(&batch, &store);
        let lm = bce_with_logits(&model.logits_inference(&x), &batch.labels).0;

        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads.get(key).unwrap()[comp];
        assert!(
            (numeric - analytic).abs() < 2e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn has_more_dense_params_than_wdl() {
        // The paper notes DCN/DFM carry more dense parameters than WDL;
        // our implementations should preserve that ordering.
        let mut rng = StdRng::seed_from_u64(1);
        let mut dcn = DeepCross::new(&mut rng, 26, 16, 3, &[64, 32]);
        let mut wdl = crate::WideDeep::new(&mut rng, 26, 16, &[64, 32]);
        assert!(dcn.n_params() > wdl.n_params());
    }

    #[test]
    #[should_panic(expected = "at least one cross layer")]
    fn zero_cross_layers_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = DeepCross::new(&mut rng, 4, 8, 0, &[16]);
    }
}
