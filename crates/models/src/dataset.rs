//! A uniform dataset interface so the trainer is generic over CTR and
//! GNN workloads.

use crate::ModelBatch;
use het_data::{CtrBatch, CtrDataset, GnnBatch, Graph, NeighborSampler};

/// A deterministic mini-batch source with train/test splits.
pub trait Dataset: Send + Sync {
    /// The batch type produced.
    type Batch: ModelBatch;

    /// The `cursor`-th training batch (cursors advance by batch size;
    /// implementations wrap at the epoch boundary).
    fn train_batch(&self, cursor: u64, batch_size: usize) -> Self::Batch;

    /// The `cursor`-th test batch.
    fn test_batch(&self, cursor: u64, batch_size: usize) -> Self::Batch;

    /// Number of training examples in one epoch.
    fn epoch_examples(&self) -> u64;

    /// Number of test examples.
    fn test_examples(&self) -> u64;

    /// Total number of distinct embedding keys the workload can touch.
    fn n_keys(&self) -> usize;
}

impl Dataset for CtrDataset {
    type Batch = CtrBatch;

    fn train_batch(&self, cursor: u64, batch_size: usize) -> CtrBatch {
        CtrDataset::train_batch(self, cursor, batch_size)
    }

    fn test_batch(&self, cursor: u64, batch_size: usize) -> CtrBatch {
        CtrDataset::test_batch(self, cursor, batch_size)
    }

    fn epoch_examples(&self) -> u64 {
        self.config().n_train as u64
    }

    fn test_examples(&self) -> u64 {
        self.config().n_test as u64
    }

    fn n_keys(&self) -> usize {
        self.total_keys()
    }
}

/// A graph plus its neighbour sampler, packaged as a [`Dataset`].
pub struct GnnDataset {
    graph: Graph,
    sampler: NeighborSampler,
}

impl GnnDataset {
    /// Bundles a generated graph with a sampler.
    pub fn new(graph: Graph, sampler: NeighborSampler) -> Self {
        GnnDataset { graph, sampler }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl Dataset for GnnDataset {
    type Batch = GnnBatch;

    fn train_batch(&self, cursor: u64, batch_size: usize) -> GnnBatch {
        self.sampler.train_batch(&self.graph, cursor, batch_size)
    }

    fn test_batch(&self, cursor: u64, batch_size: usize) -> GnnBatch {
        self.sampler.test_batch(&self.graph, cursor, batch_size)
    }

    fn epoch_examples(&self) -> u64 {
        self.graph.train_nodes().len() as u64
    }

    fn test_examples(&self) -> u64 {
        self.graph.test_nodes().len() as u64
    }

    fn n_keys(&self) -> usize {
        self.graph.n_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{CtrConfig, GraphConfig};

    #[test]
    fn ctr_dataset_implements_interface() {
        let ds = CtrDataset::new(CtrConfig::tiny(1));
        let b = Dataset::train_batch(&ds, 0, 8);
        assert_eq!(b.n_examples(), 8);
        assert_eq!(ds.epoch_examples(), 2_000);
        assert_eq!(ds.test_examples(), 500);
        assert_eq!(Dataset::n_keys(&ds), 200);
    }

    #[test]
    fn gnn_dataset_implements_interface() {
        let g = Graph::generate(GraphConfig::tiny(1));
        let ds = GnnDataset::new(g, NeighborSampler::new(3, 2));
        let b = ds.train_batch(0, 8);
        assert_eq!(b.n_examples(), 8);
        assert!(ds.epoch_examples() > 0);
        assert!(ds.test_examples() > 0);
        assert_eq!(ds.n_keys(), 300);
        assert_eq!(ds.graph().n_nodes(), 300);
    }
}
