//! Wide & Deep (Cheng et al., 2016) — the paper's WDL workload.
//!
//! Deep side: an MLP over the concatenated field embeddings. Wide side:
//! a learned linear term over the *summed* field embeddings (standing in
//! for the original's cross-product scalar weights — see DESIGN.md §6:
//! this keeps one shared embedding table without changing communication
//! behaviour). The logit is the sum of both sides.

use crate::ctr_common::{build_inputs, scatter_grads};
use crate::store::{EmbeddingStore, SparseGrads};
use crate::{EmbeddingModel, EvalChunk, MetricKind};
use het_data::CtrBatch;
use het_rng::Rng;
use het_tensor::loss::bce_with_logits;
use het_tensor::{HasParams, Linear, Matrix, Mlp, ParamVisitor};

/// The Wide & Deep CTR model.
pub struct WideDeep {
    n_fields: usize,
    dim: usize,
    deep: Mlp,
    wide: Linear,
}

impl WideDeep {
    /// Builds the model: embeddings of dimension `dim`, `n_fields`
    /// categorical fields, deep hidden widths `hidden`.
    pub fn new<R: Rng>(rng: &mut R, n_fields: usize, dim: usize, hidden: &[usize]) -> Self {
        let mut dims = vec![n_fields * dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        WideDeep {
            n_fields,
            dim,
            deep: Mlp::new(rng, &dims),
            wide: Linear::new(rng, dim, 1),
        }
    }

    /// Number of categorical fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    fn logits(&self, x: &Matrix, sum: &Matrix) -> Matrix {
        let mut deep = self.deep.forward_inference(x);
        let wide = self.wide.forward_inference(sum);
        deep.axpy(1.0, &wide);
        deep
    }
}

impl HasParams for WideDeep {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.deep.visit_params(v);
        self.wide.visit_params(v);
    }
}

impl EmbeddingModel for WideDeep {
    type Batch = CtrBatch;

    fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(
        &mut self,
        batch: &CtrBatch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads) {
        assert_eq!(
            batch.n_fields, self.n_fields,
            "batch/model field count mismatch"
        );
        let (x, sum) = build_inputs(batch, embeddings);
        let mut logits = self.deep.forward(&x);
        let wide_out = self.wide.forward(&sum);
        logits.axpy(1.0, &wide_out);

        let (loss, dlogits) = bce_with_logits(&logits, &batch.labels);

        let dx = self.deep.backward(&dlogits);
        let dsum = self.wide.backward(&dlogits);

        let mut grads = SparseGrads::new(self.dim);
        scatter_grads(batch, Some(&dx), Some(&dsum), &mut grads);
        (loss, grads)
    }

    fn evaluate(&self, batch: &CtrBatch, embeddings: &EmbeddingStore) -> EvalChunk {
        let (x, sum) = build_inputs(batch, embeddings);
        let logits = self.logits(&x, &sum);
        let scores = logits
            .as_slice()
            .iter()
            .map(|&z| het_tensor::activation::sigmoid(z))
            .collect();
        EvalChunk {
            scores,
            labels: batch.labels.clone(),
        }
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::Auc
    }

    fn flops_per_batch(&self, n: usize) -> f64 {
        self.deep.flops(n) + self.wide.flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{CtrConfig, CtrDataset};
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;
    use het_tensor::{FlatGrads, Sgd};

    fn resolve(ds: &CtrDataset, batch: &CtrBatch, dim: usize) -> EmbeddingStore {
        // Deterministic pseudo-embeddings keyed by hash for testing.
        let mut store = EmbeddingStore::new(dim);
        for k in crate::ModelBatch::unique_keys(batch) {
            let v: Vec<f32> = (0..dim)
                .map(|i| {
                    let h = k.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
                    ((h % 1000) as f32 / 1000.0 - 0.5) * 0.2
                })
                .collect();
            store.insert(k, v);
        }
        let _ = ds;
        store
    }

    #[test]
    fn forward_backward_produces_grads_for_every_key() {
        let ds = CtrDataset::new(CtrConfig::tiny(1));
        let batch = ds.train_batch(0, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = WideDeep::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&ds, &batch, 8);
        let (loss, grads) = model.forward_backward(&batch, &store);
        assert!(loss.is_finite() && loss > 0.0);
        let uniq = crate::ModelBatch::unique_keys(&batch);
        assert_eq!(grads.len(), uniq.len(), "every unique key gets a gradient");
        for k in uniq {
            assert!(grads.get(k).unwrap().iter().all(|g| g.is_finite()));
        }
    }

    #[test]
    fn training_reduces_loss_with_fixed_embeddings() {
        let ds = CtrDataset::new(CtrConfig::tiny(5));
        let batch = ds.train_batch(0, 64);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = WideDeep::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&ds, &batch, 8);
        let sgd = Sgd::new(0.1);
        let (first, _) = model.forward_backward(&batch, &store);
        sgd.step(&mut model);
        let mut last = first;
        for _ in 0..30 {
            let (l, _) = model.forward_backward(&batch, &store);
            sgd.step(&mut model);
            last = l;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let ds = CtrDataset::new(CtrConfig::tiny(9));
        let batch = ds.train_batch(3, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = WideDeep::new(&mut rng, 4, 4, &[8]);
        let mut store = resolve(&ds, &batch, 4);
        model.zero_grads();
        let (_, grads) = model.forward_backward(&batch, &store);
        // Undo dense accumulation so it doesn't affect the re-evaluations.
        model.zero_grads();

        let key = crate::ModelBatch::unique_keys(&batch)[0];
        let comp = 1usize;
        let eps = 1e-3f32;
        let orig = store.get(key).to_vec();

        let mut perturbed = orig.clone();
        perturbed[comp] += eps;
        store.insert(key, perturbed);
        let (x, sum) = build_inputs(&batch, &store);
        let lp = bce_with_logits(&model.logits(&x, &sum), &batch.labels).0;

        let mut perturbed = orig.clone();
        perturbed[comp] -= eps;
        store.insert(key, perturbed);
        let (x, sum) = build_inputs(&batch, &store);
        let lm = bce_with_logits(&model.logits(&x, &sum), &batch.labels).0;

        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads.get(key).unwrap()[comp];
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn evaluate_returns_probabilities() {
        let ds = CtrDataset::new(CtrConfig::tiny(1));
        let batch = ds.test_batch(0, 32);
        let mut rng = StdRng::seed_from_u64(2);
        let model = WideDeep::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&ds, &batch, 8);
        let chunk = model.evaluate(&batch, &store);
        assert_eq!(chunk.scores.len(), 32);
        assert!(chunk.scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert_eq!(model.metric_kind(), MetricKind::Auc);
    }

    #[test]
    fn dense_grads_flow_through_visitor() {
        let ds = CtrDataset::new(CtrConfig::tiny(1));
        let batch = ds.train_batch(0, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = WideDeep::new(&mut rng, 4, 8, &[16]);
        let store = resolve(&ds, &batch, 8);
        model.zero_grads();
        let _ = model.forward_backward(&batch, &store);
        let mut flat = FlatGrads::new();
        flat.export_from(&mut model);
        assert!(
            flat.as_slice().iter().any(|&g| g != 0.0),
            "dense grads nonzero"
        );
        assert!(model.flops_per_batch(128) > 0.0);
    }
}
