//! Shared plumbing for the three CTR models: assembling the dense input
//! matrix from resolved embeddings and scattering input gradients back
//! into per-key sparse gradients.

use crate::store::{EmbeddingStore, SparseGrads};
use het_data::CtrBatch;
use het_tensor::Matrix;

/// Builds the `(batch × fields·dim)` concatenated-embedding input and the
/// `(batch × dim)` per-example embedding sum (used by wide / first-order
/// terms).
pub fn build_inputs(batch: &CtrBatch, store: &EmbeddingStore) -> (Matrix, Matrix) {
    let dim = store.dim();
    let fields = batch.n_fields;
    let b = batch.len();
    let mut x = Matrix::zeros(b, fields * dim);
    let mut sum = Matrix::zeros(b, dim);
    for i in 0..b {
        let keys = batch.example_keys(i);
        let xr = x.row_mut(i);
        for (f, &k) in keys.iter().enumerate() {
            let v = store.get(k);
            xr[f * dim..(f + 1) * dim].copy_from_slice(v);
        }
        let sr = sum.row_mut(i);
        for &k in keys {
            for (s, &vv) in sr.iter_mut().zip(store.get(k)) {
                *s += vv;
            }
        }
    }
    (x, sum)
}

/// Scatters gradients back to embedding keys: `dx` has the concatenated
/// layout (`batch × fields·dim`), `dsum` the summed layout
/// (`batch × dim`, broadcast to every field of the example). Either may
/// be `None`.
pub fn scatter_grads(
    batch: &CtrBatch,
    dx: Option<&Matrix>,
    dsum: Option<&Matrix>,
    out: &mut SparseGrads,
) {
    let dim = out.dim();
    for i in 0..batch.len() {
        let keys = batch.example_keys(i);
        for (f, &k) in keys.iter().enumerate() {
            if let Some(dx) = dx {
                out.accumulate(k, &dx.row(i)[f * dim..(f + 1) * dim]);
            }
            if let Some(ds) = dsum {
                out.accumulate(k, ds.row(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store2() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(2);
        s.insert(0, vec![1.0, 2.0]);
        s.insert(10, vec![3.0, 4.0]);
        s.insert(11, vec![5.0, 6.0]);
        s
    }

    fn batch2() -> CtrBatch {
        // 2 examples, 2 fields.
        CtrBatch {
            keys: vec![0, 10, 0, 11],
            labels: vec![1.0, 0.0],
            n_fields: 2,
        }
    }

    #[test]
    fn inputs_concatenate_and_sum() {
        let (x, sum) = build_inputs(&batch2(), &store2());
        assert_eq!(x.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.row(1), &[1.0, 2.0, 5.0, 6.0]);
        assert_eq!(sum.row(0), &[4.0, 6.0]);
        assert_eq!(sum.row(1), &[6.0, 8.0]);
    }

    #[test]
    fn scatter_accumulates_repeated_keys() {
        let mut g = SparseGrads::new(2);
        let dx = Matrix::from_vec(2, 4, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        scatter_grads(&batch2(), Some(&dx), None, &mut g);
        // Key 0 appears in both examples' field 0: 1+3.
        assert_eq!(g.get(0).unwrap(), &[4.0, 4.0]);
        assert_eq!(g.get(10).unwrap(), &[2.0, 2.0]);
        assert_eq!(g.get(11).unwrap(), &[4.0, 4.0]);
    }

    #[test]
    fn scatter_broadcasts_sum_grads() {
        let mut g = SparseGrads::new(2);
        let ds = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        scatter_grads(&batch2(), None, Some(&ds), &mut g);
        // Example 0's dsum goes to keys {0, 10}; example 1's to {0, 11}.
        assert_eq!(g.get(0).unwrap(), &[1.0, 1.0]);
        assert_eq!(g.get(10).unwrap(), &[1.0, 0.0]);
        assert_eq!(g.get(11).unwrap(), &[0.0, 1.0]);
    }
}
