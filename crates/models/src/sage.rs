//! GraphSAGE (Hamilton et al., NeurIPS'17) with mean aggregation — the
//! paper's GNN workload.
//!
//! Two layers over sampled neighbourhoods. Node-ID embeddings are the
//! only input features (as in the paper's Reddit note, §5.1), so *all*
//! feature traffic is embedding traffic:
//!
//! * layer 1: `h¹_v = relu(W₁·[x_v ; mean(x_u, u∈N(v))])` computed for
//!   the targets and their hop-1 samples in one stacked pass (so the
//!   shared `W₁` sees a single forward/backward);
//! * layer 2: `z_t = W₂·[h¹_t ; mean(h¹_u, u∈N(t))]`, softmax over
//!   classes.

use crate::store::{EmbeddingStore, SparseGrads};
use crate::{EmbeddingModel, EvalChunk, MetricKind};
use het_data::{GnnBatch, Key};
use het_rng::Rng;
use het_tensor::loss::{accuracy, softmax_cross_entropy};
use het_tensor::{HasParams, Linear, Matrix, ParamVisitor};

/// The 2-layer GraphSAGE node classifier.
pub struct GraphSage {
    dim: usize,
    hidden: usize,
    n_classes: usize,
    layer1: Linear,
    layer2: Linear,
}

impl GraphSage {
    /// Builds the model: `dim`-dimensional node embeddings, `hidden`
    /// units, `n_classes` output classes.
    pub fn new<R: Rng>(rng: &mut R, dim: usize, hidden: usize, n_classes: usize) -> Self {
        GraphSage {
            dim,
            hidden,
            n_classes,
            layer1: Linear::new(rng, 2 * dim, hidden),
            layer2: Linear::new(rng, 2 * hidden, n_classes),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Gathers node embeddings into a `(nodes.len() × dim)` matrix.
    fn gather(&self, nodes: &[u32], store: &EmbeddingStore) -> Matrix {
        let mut m = Matrix::zeros(nodes.len(), self.dim);
        for (i, &v) in nodes.iter().enumerate() {
            m.row_mut(i).copy_from_slice(store.get(v as Key));
        }
        m
    }

    /// Mean over consecutive groups of `fanout` rows:
    /// `(parents·fanout × c) → (parents × c)`.
    fn group_mean(m: &Matrix, fanout: usize) -> Matrix {
        assert_eq!(
            m.rows() % fanout,
            0,
            "row count must be divisible by fanout"
        );
        let parents = m.rows() / fanout;
        let mut out = Matrix::zeros(parents, m.cols());
        let inv = 1.0 / fanout as f32;
        for p in 0..parents {
            let orow = out.row_mut(p);
            for f in 0..fanout {
                for (o, &v) in orow.iter_mut().zip(m.row(p * fanout + f)) {
                    *o += v * inv;
                }
            }
        }
        out
    }

    /// Inverse of [`GraphSage::group_mean`] for gradients: spreads each
    /// parent-row gradient equally over its `fanout` member rows.
    fn group_mean_backward(d: &Matrix, fanout: usize) -> Matrix {
        let mut out = Matrix::zeros(d.rows() * fanout, d.cols());
        let inv = 1.0 / fanout as f32;
        for p in 0..d.rows() {
            for f in 0..fanout {
                let orow = out.row_mut(p * fanout + f);
                for (o, &v) in orow.iter_mut().zip(d.row(p)) {
                    *o = v * inv;
                }
            }
        }
        out
    }

    /// Shared forward plumbing; returns the logits plus everything the
    /// backward pass needs.
    fn forward_full(&mut self, batch: &GnnBatch, store: &EmbeddingStore) -> ForwardState {
        let b = batch.len();
        let x_targets = self.gather(&batch.targets, store);
        let x_hop1 = self.gather(&batch.hop1, store);
        let x_hop2_t = self.gather(&batch.hop2_targets, store);
        let x_hop2_h1 = self.gather(&batch.hop2_hop1, store);

        // Layer-1 inputs for targets and hop-1 nodes, stacked so W1 runs
        // once.
        let in_targets = x_targets.hcat(&Self::group_mean(&x_hop2_t, batch.fanout2));
        let in_hop1 = x_hop1.hcat(&Self::group_mean(&x_hop2_h1, batch.fanout2));
        let l1_input = in_targets.vcat(&in_hop1);

        let mut h1 = self.layer1.forward(&l1_input);
        let mask1 = het_tensor::activation::relu_inplace(&mut h1);

        let (h1_targets, h1_hop1) = h1.vsplit(b);
        let l2_input = h1_targets.hcat(&Self::group_mean(&h1_hop1, batch.fanout1));
        let logits = self.layer2.forward(&l2_input);

        ForwardState { logits, mask1 }
    }

    /// Inference-only logits.
    fn logits_inference(&self, batch: &GnnBatch, store: &EmbeddingStore) -> Matrix {
        let b = batch.len();
        let x_targets = self.gather(&batch.targets, store);
        let x_hop1 = self.gather(&batch.hop1, store);
        let x_hop2_t = self.gather(&batch.hop2_targets, store);
        let x_hop2_h1 = self.gather(&batch.hop2_hop1, store);

        let in_targets = x_targets.hcat(&Self::group_mean(&x_hop2_t, batch.fanout2));
        let in_hop1 = x_hop1.hcat(&Self::group_mean(&x_hop2_h1, batch.fanout2));
        let l1_input = in_targets.vcat(&in_hop1);

        let mut h1 = self.layer1.forward_inference(&l1_input);
        for v in h1.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let (h1_targets, h1_hop1) = h1.vsplit(b);
        let l2_input = h1_targets.hcat(&Self::group_mean(&h1_hop1, batch.fanout1));
        self.layer2.forward_inference(&l2_input)
    }

    /// Scatters a per-row node gradient matrix into sparse grads.
    fn scatter(nodes: &[u32], d: &Matrix, out: &mut SparseGrads) {
        for (i, &v) in nodes.iter().enumerate() {
            out.accumulate(v as Key, d.row(i));
        }
    }
}

struct ForwardState {
    logits: Matrix,
    mask1: Matrix,
}

impl HasParams for GraphSage {
    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.layer1.visit_params(v);
        self.layer2.visit_params(v);
    }
}

impl EmbeddingModel for GraphSage {
    type Batch = GnnBatch;

    fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(
        &mut self,
        batch: &GnnBatch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads) {
        let b = batch.len();
        let state = self.forward_full(batch, embeddings);
        let (loss, dlogits) = softmax_cross_entropy(&state.logits, &batch.labels);

        // Layer 2 backward, split into self and neighbour parts.
        let dl2_input = self.layer2.backward(&dlogits);
        let (dh1_targets, dmean_h1) = dl2_input.hsplit(self.hidden);
        let dh1_hop1 = Self::group_mean_backward(&dmean_h1, batch.fanout1);

        // Stack to match the layer-1 forward, apply the ReLU mask.
        let mut dh1 = dh1_targets.vcat(&dh1_hop1);
        het_tensor::activation::relu_backward(&mut dh1, &state.mask1);

        let dl1_input = self.layer1.backward(&dh1);
        let (d_in_targets, d_in_hop1) = dl1_input.vsplit(b);
        let (dx_targets, dmean_x_t) = d_in_targets.hsplit(self.dim);
        let (dx_hop1, dmean_x_h1) = d_in_hop1.hsplit(self.dim);
        let dx_hop2_t = Self::group_mean_backward(&dmean_x_t, batch.fanout2);
        let dx_hop2_h1 = Self::group_mean_backward(&dmean_x_h1, batch.fanout2);

        let mut grads = SparseGrads::new(self.dim);
        Self::scatter(&batch.targets, &dx_targets, &mut grads);
        Self::scatter(&batch.hop1, &dx_hop1, &mut grads);
        Self::scatter(&batch.hop2_targets, &dx_hop2_t, &mut grads);
        Self::scatter(&batch.hop2_hop1, &dx_hop2_h1, &mut grads);
        (loss, grads)
    }

    fn evaluate(&self, batch: &GnnBatch, embeddings: &EmbeddingStore) -> EvalChunk {
        let logits = self.logits_inference(batch, embeddings);
        // Per-example correctness as the "score"; accuracy = mean score.
        let mut scores = Vec::with_capacity(batch.len());
        for i in 0..batch.len() {
            let row = logits.row(i);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            scores.push(if pred == batch.labels[i] { 1.0 } else { 0.0 });
        }
        let _ = accuracy(&logits, &batch.labels); // sanity: same definition
        EvalChunk {
            scores,
            labels: batch.labels.iter().map(|&l| l as f32).collect(),
        }
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::Accuracy
    }

    fn flops_per_batch(&self, n: usize) -> f64 {
        // Layer 1 runs over n·(1 + fanout1) rows; approximate fanout1 ≈ 10.
        let l1_rows = n * 11;
        self.layer1.flops(l1_rows) + self.layer2.flops(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_data::{Graph, GraphConfig, NeighborSampler};
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;
    use het_tensor::Sgd;

    fn setup() -> (Graph, NeighborSampler) {
        (
            Graph::generate(GraphConfig::tiny(7)),
            NeighborSampler::new(4, 3),
        )
    }

    fn resolve(batch: &GnnBatch, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim);
        for k in batch.unique_keys() {
            let v: Vec<f32> = (0..dim)
                .map(|i| {
                    let h = k
                        .wrapping_mul(0x94D049BB133111EB)
                        .wrapping_add(i as u64 * 3);
                    ((h % 983) as f32 / 983.0 - 0.5) * 0.3
                })
                .collect();
            store.insert(k, v);
        }
        store
    }

    #[test]
    fn group_mean_and_backward_are_adjoint() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mean = GraphSage::group_mean(&m, 2);
        assert_eq!(mean.row(0), &[2.0, 3.0]);
        assert_eq!(mean.row(1), &[6.0, 7.0]);
        let d = Matrix::from_vec(2, 2, vec![2.0, 2.0, 4.0, 4.0]);
        let back = GraphSage::group_mean_backward(&d, 2);
        assert_eq!(back.row(0), &[1.0, 1.0]);
        assert_eq!(back.row(3), &[2.0, 2.0]);
    }

    #[test]
    fn forward_backward_covers_all_batch_nodes() {
        let (g, s) = setup();
        let batch = s.train_batch(&g, 0, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = GraphSage::new(&mut rng, 8, 16, g.config().n_classes);
        let store = resolve(&batch, 8);
        let (loss, grads) = model.forward_backward(&batch, &store);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grads.len(), batch.unique_keys().len());
    }

    #[test]
    fn loss_decreases_under_training() {
        let (g, s) = setup();
        let batch = s.train_batch(&g, 0, 32);
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = GraphSage::new(&mut rng, 8, 16, g.config().n_classes);
        let store = resolve(&batch, 8);
        let sgd = Sgd::new(0.1);
        let (first, _) = model.forward_backward(&batch, &store);
        sgd.step(&mut model);
        let mut last = first;
        for _ in 0..40 {
            let (l, _) = model.forward_backward(&batch, &store);
            sgd.step(&mut model);
            last = l;
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let (g, s) = setup();
        let batch = s.train_batch(&g, 1, 4);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = GraphSage::new(&mut rng, 4, 8, g.config().n_classes);
        let mut store = resolve(&batch, 4);
        model.zero_grads();
        let (_, grads) = model.forward_backward(&batch, &store);
        model.zero_grads();

        let key = batch.unique_keys()[0];
        let comp = 1usize;
        let eps = 1e-3f32;
        let orig = store.get(key).to_vec();

        let mut p = orig.clone();
        p[comp] += eps;
        store.insert(key, p);
        let lp = softmax_cross_entropy(&model.logits_inference(&batch, &store), &batch.labels).0;

        let mut m = orig.clone();
        m[comp] -= eps;
        store.insert(key, m);
        let lm = softmax_cross_entropy(&model.logits_inference(&batch, &store), &batch.labels).0;

        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grads.get(key).unwrap()[comp];
        assert!(
            (numeric - analytic).abs() < 2e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn evaluate_scores_are_binary() {
        let (g, s) = setup();
        let batch = s.test_batch(&g, 0, 16);
        let mut rng = StdRng::seed_from_u64(5);
        let model = GraphSage::new(&mut rng, 8, 16, g.config().n_classes);
        let store = resolve(&batch, 8);
        let chunk = model.evaluate(&batch, &store);
        assert_eq!(chunk.scores.len(), 16);
        assert!(chunk.scores.iter().all(|&s| s == 0.0 || s == 1.0));
        assert_eq!(model.metric_kind(), MetricKind::Accuracy);
        assert!(model.flops_per_batch(32) > 0.0);
    }
}
