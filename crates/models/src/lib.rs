//! Embedding models on top of `het-tensor`, matching the paper's
//! workloads (§5): Wide&Deep (WDL), DeepFM (DFM), Deep&Cross (DCN) on
//! CTR data, and GraphSAGE on graphs.
//!
//! Models are deliberately split from embedding *storage*: a model never
//! owns the embedding table. The trainer resolves the batch's unique keys
//! through HET (cache + server) into an [`EmbeddingStore`], calls
//! [`EmbeddingModel::forward_backward`], and routes the returned
//! [`SparseGrads`] back through `Het.Write`. Dense parameters live inside
//! the model replica and are synchronised by AllReduce or a dense PS —
//! exactly the paper's hybrid decomposition (§3, Fig. 4).

#![warn(missing_docs)]

pub mod ctr_common;
pub mod dataset;
pub mod dcn;
pub mod dfm;
pub mod sage;
pub mod store;
pub mod wdl;
pub mod xdeepfm;

pub use dataset::{Dataset, GnnDataset};
pub use dcn::DeepCross;
pub use dfm::DeepFm;
pub use sage::GraphSage;
pub use store::{EmbeddingStore, SparseGrads};
pub use wdl::WideDeep;
pub use xdeepfm::XDeepFm;

use het_data::Key;
use het_tensor::HasParams;

/// How a workload's quality is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// ROC AUC over probability scores (CTR workloads; paper uses ~0.80
    /// thresholds on Criteo).
    Auc,
    /// Classification accuracy (GNN workloads; the paper sets manual
    /// thresholds).
    Accuracy,
}

/// Per-example evaluation output: a score and a {0,1} label. For AUC the
/// score is the predicted probability; for accuracy it is 1.0 iff the
/// prediction was correct (label unused).
#[derive(Clone, Debug, Default)]
pub struct EvalChunk {
    /// Model scores, one per example.
    pub scores: Vec<f32>,
    /// Ground-truth labels, one per example.
    pub labels: Vec<f32>,
}

impl EvalChunk {
    /// Appends another chunk.
    pub fn extend(&mut self, other: EvalChunk) {
        self.scores.extend(other.scores);
        self.labels.extend(other.labels);
    }

    /// Reduces the chunk under a metric kind.
    pub fn metric(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::Auc => het_data::auc(&self.scores, &self.labels),
            MetricKind::Accuracy => {
                if self.scores.is_empty() {
                    0.0
                } else {
                    self.scores.iter().map(|&s| s as f64).sum::<f64>() / self.scores.len() as f64
                }
            }
        }
    }
}

/// A mini-batch an embedding model can consume.
pub trait ModelBatch {
    /// Sorted, deduplicated embedding keys the batch touches.
    fn unique_keys(&self) -> Vec<Key>;
    /// Number of examples.
    fn n_examples(&self) -> usize;
}

impl ModelBatch for het_data::CtrBatch {
    fn unique_keys(&self) -> Vec<Key> {
        het_data::CtrBatch::unique_keys(self)
    }
    fn n_examples(&self) -> usize {
        self.len()
    }
}

impl ModelBatch for het_data::GnnBatch {
    fn unique_keys(&self) -> Vec<Key> {
        het_data::GnnBatch::unique_keys(self)
    }
    fn n_examples(&self) -> usize {
        self.len()
    }
}

/// An embedding model: dense parameters inside, embeddings outside.
pub trait EmbeddingModel: HasParams + Send {
    /// The batch type this model trains on.
    type Batch: ModelBatch;

    /// Embedding dimension D.
    fn embedding_dim(&self) -> usize;

    /// Full forward + backward on one batch. Dense gradients accumulate
    /// inside the model (read back via `visit_params`/`FlatGrads`); the
    /// sparse embedding gradients are returned for `Het.Write`.
    /// Returns `(mean loss, sparse gradients)`.
    fn forward_backward(
        &mut self,
        batch: &Self::Batch,
        embeddings: &EmbeddingStore,
    ) -> (f32, SparseGrads);

    /// Inference-only evaluation of one batch.
    fn evaluate(&self, batch: &Self::Batch, embeddings: &EmbeddingStore) -> EvalChunk;

    /// Which metric `EvalChunk`s should be reduced under.
    fn metric_kind(&self) -> MetricKind;

    /// Estimated forward+backward FLOPs for a batch of `n` examples
    /// (drives the simulated compute-time model).
    fn flops_per_batch(&self, n: usize) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_chunk_auc_reduction() {
        let chunk = EvalChunk {
            scores: vec![0.9, 0.8, 0.2, 0.1],
            labels: vec![1.0, 1.0, 0.0, 0.0],
        };
        assert!((chunk.metric(MetricKind::Auc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eval_chunk_accuracy_reduction() {
        let chunk = EvalChunk {
            scores: vec![1.0, 0.0, 1.0, 1.0],
            labels: vec![0.0; 4],
        };
        assert!((chunk.metric(MetricKind::Accuracy) - 0.75).abs() < 1e-12);
        let empty = EvalChunk::default();
        assert_eq!(empty.metric(MetricKind::Accuracy), 0.0);
    }

    #[test]
    fn eval_chunk_extend_concatenates() {
        let mut a = EvalChunk {
            scores: vec![1.0],
            labels: vec![1.0],
        };
        let b = EvalChunk {
            scores: vec![0.0, 0.5],
            labels: vec![0.0, 1.0],
        };
        a.extend(b);
        assert_eq!(a.scores, vec![1.0, 0.0, 0.5]);
        assert_eq!(a.labels, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn model_batch_impls_agree_with_inherent_methods() {
        let batch = het_data::CtrBatch {
            keys: vec![3, 1, 3, 2],
            labels: vec![0.0, 1.0],
            n_fields: 2,
        };
        assert_eq!(ModelBatch::unique_keys(&batch), vec![1, 2, 3]);
        assert_eq!(ModelBatch::n_examples(&batch), 2);
    }
}
