//! Embedding working sets: what the trainer hands a model (resolved
//! vectors) and what the model hands back (per-key gradients).

use het_data::Key;
use std::collections::HashMap;

/// The resolved embeddings for one batch: key → vector, all of one
/// dimension. Built by the trainer from cache/PS reads.
#[derive(Clone, Debug, Default)]
pub struct EmbeddingStore {
    dim: usize,
    map: HashMap<Key, Vec<f32>>,
}

impl EmbeddingStore {
    /// An empty store for `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> Self {
        EmbeddingStore {
            dim,
            map: HashMap::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a resolved vector.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, key: Key, vector: Vec<f32>) {
        assert_eq!(vector.len(), self.dim, "embedding dimension mismatch");
        self.map.insert(key, vector);
    }

    /// The vector for a key.
    ///
    /// # Panics
    /// Panics if the key was not resolved — a protocol bug: `Het.Read`
    /// must resolve every unique key of the batch before the model runs.
    pub fn get(&self, key: Key) -> &[f32] {
        self.map
            .get(&key)
            .unwrap_or_else(|| panic!("embedding key {key} was not resolved by Het.Read"))
            .as_slice()
    }

    /// Number of resolved keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resolved.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a key is resolved.
    pub fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }
}

/// Per-key accumulated embedding gradients produced by one batch.
#[derive(Clone, Debug, Default)]
pub struct SparseGrads {
    dim: usize,
    map: HashMap<Key, Vec<f32>>,
}

impl SparseGrads {
    /// An empty gradient set for `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> Self {
        SparseGrads {
            dim,
            map: HashMap::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Accumulates `grad` into the key's slot.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn accumulate(&mut self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.dim, "gradient dimension mismatch");
        let slot = self.map.entry(key).or_insert_with(|| vec![0.0; self.dim]);
        for (s, &g) in slot.iter_mut().zip(grad) {
            *s += g;
        }
    }

    /// Scales every accumulated gradient (e.g. to average over workers).
    pub fn scale(&mut self, factor: f32) {
        for v in self.map.values_mut() {
            v.iter_mut().for_each(|g| *g *= factor);
        }
    }

    /// The accumulated gradient of one key, if any.
    pub fn get(&self, key: Key) -> Option<&[f32]> {
        self.map.get(&key).map(Vec::as_slice)
    }

    /// Number of keys with gradients.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no gradients were produced.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(key, gradient)` pairs in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &[f32])> {
        self.map.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Keys in sorted order (deterministic iteration for the trainer).
    pub fn sorted_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Merges another gradient set into this one.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn merge(&mut self, other: &SparseGrads) {
        assert_eq!(self.dim, other.dim, "gradient dimension mismatch");
        for (k, g) in other.iter() {
            self.accumulate(k, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trip() {
        let mut s = EmbeddingStore::new(2);
        assert!(s.is_empty());
        s.insert(5, vec![1.0, 2.0]);
        assert_eq!(s.get(5), &[1.0, 2.0]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "not resolved")]
    fn missing_key_panics() {
        let s = EmbeddingStore::new(2);
        let _ = s.get(1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn store_wrong_dim_rejected() {
        let mut s = EmbeddingStore::new(2);
        s.insert(1, vec![0.0; 3]);
    }

    #[test]
    fn grads_accumulate_per_key() {
        let mut g = SparseGrads::new(2);
        g.accumulate(1, &[1.0, 2.0]);
        g.accumulate(1, &[0.5, -1.0]);
        g.accumulate(2, &[3.0, 3.0]);
        assert_eq!(g.get(1).unwrap(), &[1.5, 1.0]);
        assert_eq!(g.get(2).unwrap(), &[3.0, 3.0]);
        assert_eq!(g.get(3), None);
        assert_eq!(g.len(), 2);
        assert_eq!(g.sorted_keys(), vec![1, 2]);
    }

    #[test]
    fn grads_scale_and_merge() {
        let mut a = SparseGrads::new(1);
        a.accumulate(1, &[2.0]);
        let mut b = SparseGrads::new(1);
        b.accumulate(1, &[4.0]);
        b.accumulate(2, &[6.0]);
        a.merge(&b);
        a.scale(0.5);
        assert_eq!(a.get(1).unwrap(), &[3.0]);
        assert_eq!(a.get(2).unwrap(), &[3.0]);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut g = SparseGrads::new(1);
        g.accumulate(1, &[1.0]);
        g.accumulate(2, &[2.0]);
        let total: f32 = g.iter().map(|(_, v)| v[0]).sum();
        assert_eq!(total, 3.0);
        assert!(!g.is_empty());
    }
}
