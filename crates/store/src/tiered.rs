//! The tiered row store: bounded hot tier over the cold page log.
//!
//! The hot tier is a plain map capped at a per-shard row budget;
//! residency is decided by a `het-cache` eviction policy (any of the
//! zoo). A demoted row is appended to the cold log only if it was
//! modified while hot — a clean row's cold page is still current, so
//! demotion is free (the common case for read-heavy serving). Promotion
//! reads the row's page back and leaves the index entry in place.
//!
//! Every access, promotion, and demotion is a deterministic function of
//! the operation stream, and all modelled disk time accrues in the cold
//! log for the server to drain into simulated clocks. A `HashMap` backs
//! the hot tier, but nothing observable ever iterates it unordered:
//! exports sort, demotion order comes from the policy, and the cold
//! log's layout depends only on the demotion sequence.

use crate::cold::ColdLog;
use crate::{Key, RowStore, StoreStats, StoredRow, TieredConfig};
use het_cache::CachePolicy;
use std::collections::{BTreeSet, HashMap};
use std::io;

struct HotRow {
    row: StoredRow,
    /// Modified since promotion/creation — must be written back on
    /// demotion. Clean rows demote for free.
    dirty: bool,
}

/// A [`RowStore`] with a capacity-bounded in-memory hot tier over an
/// append-only cold page log. See the module docs.
pub struct TieredStore {
    shard: u64,
    capacity: usize,
    hot: HashMap<Key, HotRow>,
    policy: Box<dyn CachePolicy>,
    cold: ColdLog,
    /// Keys resident hot whose cold page is still indexed (promoted or
    /// overwritten-in-place); `len()` must not double-count them.
    hot_and_cold: usize,
    recovered_rows: usize,
    hot_hits: u64,
    promotions: u64,
    demotions: u64,
    clean_drops: u64,
}

impl TieredStore {
    /// Opens the store for one shard with a hot-tier budget of
    /// `hot_rows` (floored at 1). File-backed configurations replay any
    /// existing cold segments under `<dir>/shard-<shard>/` (crash
    /// recovery); recovered rows start cold.
    pub fn open(cfg: &TieredConfig, dim: usize, shard: u64, hot_rows: usize) -> io::Result<Self> {
        let capacity = hot_rows.max(1);
        let dir = cfg.dir.as_ref().map(|d| d.join(format!("shard-{shard}")));
        let (cold, recovered_rows) = ColdLog::open(
            dim,
            dir,
            cfg.segment_bytes,
            cfg.gc_ratio,
            cfg.gc_min_bytes,
            cfg.disk,
        )?;
        Ok(TieredStore {
            shard,
            capacity,
            hot: HashMap::new(),
            policy: cfg.policy.build(capacity),
            cold,
            hot_and_cold: 0,
            recovered_rows,
            hot_hits: 0,
            promotions: 0,
            demotions: 0,
            clean_drops: 0,
        })
    }

    /// The hot-tier row budget for this shard.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows recovered from an existing cold log at open (0 for fresh or
    /// memory-backed stores).
    pub fn recovered_rows(&self) -> usize {
        self.recovered_rows
    }

    /// Deterministic text rendering of the cold index and segment state
    /// — the compaction tests compare it byte-for-byte across runs.
    pub fn cold_fingerprint(&self) -> String {
        self.cold.index_fingerprint()
    }

    /// Forces a cold-tier compaction pass regardless of garbage ratio.
    pub fn force_compact(&mut self) {
        self.cold.compact().expect("cold tier I/O failed");
    }

    /// Evicts until the hot tier has room for one more row.
    fn make_room(&mut self) {
        while self.hot.len() >= self.capacity {
            let victim = self
                .policy
                .pop_victim()
                .expect("policy tracks every hot row");
            self.demote(victim);
        }
    }

    fn demote(&mut self, victim: Key) {
        let hr = self.hot.remove(&victim).expect("victim must be hot");
        if hr.dirty {
            let was_cold = self.cold.contains(victim);
            let (wb0, c0) = (self.cold.write_bytes, self.cold.compactions);
            self.cold
                .append_row(victim, &hr.row)
                .expect("cold tier I/O failed");
            if was_cold {
                self.hot_and_cold -= 1;
            }
            self.demotions += 1;
            if het_trace::enabled() {
                let idx = Some(self.shard);
                het_trace::counter_add_at("store", "demotions", idx, 1);
                het_trace::counter_add_at(
                    "store",
                    "cold_write_bytes",
                    idx,
                    self.cold.write_bytes - wb0,
                );
                let compactions = self.cold.compactions - c0;
                if compactions > 0 {
                    het_trace::counter_add_at("store", "compactions", idx, compactions);
                }
            }
        } else {
            debug_assert!(self.cold.contains(victim), "clean rows come from cold");
            self.hot_and_cold -= 1;
            self.clean_drops += 1;
            if het_trace::enabled() {
                het_trace::counter_add_at("store", "clean_drops", Some(self.shard), 1);
            }
        }
    }

    /// Reads `key`'s page back into the hot tier (it stays indexed cold
    /// too, clean). The caller must have checked `cold.contains(key)`.
    fn promote(&mut self, key: Key) {
        let rb0 = self.cold.read_bytes;
        let row = self
            .cold
            .read_row(key)
            .expect("cold tier I/O failed")
            .expect("promote: cold index must hold the key");
        let read_bytes = self.cold.read_bytes - rb0;
        self.make_room();
        // Cost for cost-aware policies: the disk bytes a refetch would
        // re-read; size: the row's in-memory footprint.
        self.policy
            .on_insert_cost(key, read_bytes.max(1), (row.vector.len() as u64 * 4).max(1));
        self.hot.insert(key, HotRow { row, dirty: false });
        self.hot_and_cold += 1;
        self.promotions += 1;
        if het_trace::enabled() {
            let idx = Some(self.shard);
            het_trace::counter_add_at("store", "promotions", idx, 1);
            het_trace::counter_add_at("store", "cold_read_bytes", idx, read_bytes);
        }
    }
}

impl RowStore for TieredStore {
    fn get(&mut self, key: Key) -> Option<&StoredRow> {
        if self.hot.contains_key(&key) {
            self.policy.on_access(key);
            self.hot_hits += 1;
            if het_trace::enabled() {
                het_trace::counter_add_at("store", "hot_hits", Some(self.shard), 1);
            }
        } else if self.cold.contains(key) {
            self.promote(key);
        } else {
            return None;
        }
        self.hot.get(&key).map(|h| &h.row)
    }

    fn apply(
        &mut self,
        key: Key,
        init: &mut dyn FnMut() -> StoredRow,
        f: &mut dyn FnMut(&mut StoredRow),
    ) {
        if self.hot.contains_key(&key) {
            self.policy.on_access(key);
            self.hot_hits += 1;
            if het_trace::enabled() {
                het_trace::counter_add_at("store", "hot_hits", Some(self.shard), 1);
            }
        } else if self.cold.contains(key) {
            self.promote(key);
        } else {
            self.make_room();
            self.hot.insert(
                key,
                HotRow {
                    row: init(),
                    dirty: true,
                },
            );
            self.policy.on_insert(key);
        }
        let h = self.hot.get_mut(&key).expect("resident after the above");
        h.dirty = true;
        f(&mut h.row);
    }

    fn insert(&mut self, key: Key, row: StoredRow) {
        if let Some(h) = self.hot.get_mut(&key) {
            h.row = row;
            h.dirty = true;
            self.policy.on_access(key);
        } else {
            let was_cold = self.cold.contains(key);
            self.make_room();
            self.hot.insert(key, HotRow { row, dirty: true });
            self.policy.on_insert(key);
            if was_cold {
                // The stale cold page stays indexed until this row is
                // demoted (dirty), which supersedes it.
                self.hot_and_cold += 1;
            }
        }
    }

    fn remove(&mut self, key: Key) -> Option<StoredRow> {
        if let Some(hr) = self.hot.remove(&key) {
            self.policy.on_remove(key);
            if self.cold.contains(key) {
                self.cold.mark_dead(key);
                self.hot_and_cold -= 1;
            }
            return Some(hr.row);
        }
        self.cold.remove(key).expect("cold tier I/O failed")
    }

    fn peek(&mut self, key: Key) -> Option<StoredRow> {
        if let Some(h) = self.hot.get(&key) {
            // No policy touch, no hit counter: observers must not
            // change what the run would otherwise do.
            return Some(h.row.clone());
        }
        if self.cold.contains(key) {
            return Some(
                self.cold
                    .read_row(key)
                    .expect("cold tier I/O failed")
                    .expect("cold index holds the key"),
            );
        }
        None
    }

    fn contains(&self, key: Key) -> bool {
        self.hot.contains_key(&key) || self.cold.contains(key)
    }

    fn clock_of(&self, key: Key) -> Option<u64> {
        if let Some(h) = self.hot.get(&key) {
            return Some(h.row.clock);
        }
        self.cold.clock_of(key)
    }

    fn len(&self) -> usize {
        self.hot.len() + self.cold.len() - self.hot_and_cold
    }

    fn sorted_keys(&self) -> Vec<Key> {
        let mut keys: BTreeSet<Key> = self.hot.keys().copied().collect();
        keys.extend(self.cold.keys());
        keys.into_iter().collect()
    }

    fn clear(&mut self) -> Vec<(Key, u64)> {
        let mut lost: Vec<(Key, u64)> = self.hot.iter().map(|(&k, h)| (k, h.row.clock)).collect();
        lost.extend(
            self.cold
                .clocks()
                .filter(|(k, _)| !self.hot.contains_key(k)),
        );
        lost.sort_unstable();
        for (key, _) in self.hot.drain() {
            self.policy.on_remove(key);
        }
        self.cold.clear().expect("cold tier I/O failed");
        self.hot_and_cold = 0;
        lost
    }

    fn resident_rows(&self) -> usize {
        self.hot.len()
    }

    fn take_io_ns(&mut self) -> u64 {
        self.cold.take_io_ns()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hot_hits: self.hot_hits,
            promotions: self.promotions,
            demotions: self.demotions,
            clean_drops: self.clean_drops,
            cold_read_bytes: self.cold.read_bytes,
            cold_write_bytes: self.cold.write_bytes,
            io_ns: self.cold.io_ns_total,
            compactions: self.cold.compactions,
            reclaimed_bytes: self.cold.reclaimed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn tiered(hot_rows: usize) -> TieredStore {
        TieredStore::open(&TieredConfig::new(hot_rows), 2, 0, hot_rows).unwrap()
    }

    fn row(v: f32, clock: u64) -> StoredRow {
        StoredRow {
            vector: vec![v, -v],
            clock,
            opt_state: Vec::new(),
        }
    }

    #[test]
    fn hot_tier_stays_bounded_and_rows_survive_demotion() {
        let mut s = tiered(4);
        for k in 0..32u64 {
            s.insert(k, row(k as f32, k));
        }
        assert!(s.resident_rows() <= 4);
        assert_eq!(s.len(), 32);
        for k in 0..32u64 {
            assert_eq!(s.get(k), Some(&row(k as f32, k)), "key {k}");
        }
        assert!(s.take_io_ns() > 0, "demotions and promotions cost time");
        let st = s.stats();
        assert!(st.demotions >= 28);
        assert!(st.promotions > 0);
    }

    #[test]
    fn clean_demotion_writes_nothing() {
        let mut s = tiered(2);
        for k in 0..8u64 {
            s.insert(k, row(k as f32, 0));
        }
        // First read pass flushes the dirty leftovers still hot from
        // the inserts; after it every row is clean.
        for k in 0..8u64 {
            let _ = s.get(k);
        }
        // Second pass: each promotion is clean, so demoting it again
        // must not grow the log.
        let wb_before_reads = s.stats().cold_write_bytes;
        for k in 0..8u64 {
            let _ = s.get(k);
        }
        let st = s.stats();
        assert_eq!(
            st.cold_write_bytes, wb_before_reads,
            "clean demotions must not write"
        );
        assert!(st.clean_drops > 0);
    }

    #[test]
    fn clock_queries_never_charge_io() {
        let mut s = tiered(1);
        for k in 0..6u64 {
            s.insert(k, row(1.0, k + 10));
        }
        let _ = s.take_io_ns();
        for k in 0..6u64 {
            assert_eq!(s.clock_of(k), Some(k + 10));
        }
        assert_eq!(s.take_io_ns(), 0, "clock_of is served from the index");
        assert_eq!(s.clock_of(99), None);
    }

    #[test]
    fn matches_flat_store_under_seeded_churn() {
        use het_rng::rngs::StdRng;
        use het_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5702E);
        let mut a = tiered(3);
        let mut b = MemStore::new();
        for step in 0..2000u64 {
            let key = rng.gen_range(0u64..40);
            match rng.gen_range(0u32..10) {
                0..=3 => {
                    for store in [&mut a as &mut dyn RowStore, &mut b as &mut dyn RowStore] {
                        store.apply(key, &mut || row(key as f32, 0), &mut |r| {
                            r.vector[0] += 1.0;
                            r.clock += 1;
                        });
                    }
                }
                4..=6 => {
                    assert_eq!(a.get(key).cloned(), b.get(key).cloned(), "step {step}");
                }
                7 => {
                    let r = row(step as f32, step);
                    a.insert(key, r.clone());
                    b.insert(key, r);
                }
                8 => {
                    assert_eq!(a.remove(key), b.remove(key), "step {step}");
                }
                _ => {
                    assert_eq!(a.clock_of(key), b.clock_of(key), "step {step}");
                    assert_eq!(a.contains(key), b.contains(key), "step {step}");
                }
            }
            assert_eq!(a.len(), b.len(), "len diverged at step {step}");
        }
        assert_eq!(a.sorted_keys(), b.sorted_keys());
        assert_eq!(a.clear(), b.clear());
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn same_op_stream_is_byte_identical() {
        let run = || {
            let mut s = tiered(2);
            for step in 0..500u64 {
                let key = (step * 7) % 23;
                s.apply(key, &mut || row(key as f32, 0), &mut |r| {
                    r.vector[1] -= 0.25;
                    r.clock += 1;
                });
                if step % 5 == 0 {
                    let _ = s.get((step * 3) % 23);
                }
            }
            (s.cold_fingerprint(), s.stats(), s.take_io_ns())
        };
        assert_eq!(run(), run(), "tiered store must be deterministic");
    }

    #[test]
    fn export_reads_in_place_without_promotion() {
        let mut s = tiered(2);
        for k in 0..10u64 {
            s.insert(k, row(k as f32, k));
        }
        // Flush so residency is settled, then record it.
        for k in 0..10u64 {
            let _ = s.get(k);
        }
        let resident_before = s.resident_rows();
        let promotions_before = s.stats().promotions;
        let _ = s.take_io_ns();

        let rows = s.export_rows();
        assert_eq!(rows.len(), 10);
        for (i, (k, r)) in rows.iter().enumerate() {
            assert_eq!(*k, i as u64, "export must be key-sorted");
            assert_eq!(r, &row(*k as f32, *k));
        }
        assert_eq!(
            s.resident_rows(),
            resident_before,
            "export must not promote"
        );
        assert_eq!(s.stats().promotions, promotions_before);
        assert!(s.take_io_ns() > 0, "cold rows were read from the log");
        assert_eq!(s.peek(3), Some(row(3.0, 3)));
        assert_eq!(s.peek(99), None);
    }

    #[test]
    fn overwrite_of_cold_key_keeps_single_identity() {
        let mut s = tiered(1);
        s.insert(10, row(1.0, 1));
        s.insert(11, row(2.0, 2)); // demotes 10 to cold
        assert_eq!(s.len(), 2);
        s.insert(10, row(3.0, 3)); // overwrites while a stale cold page exists
        assert_eq!(s.len(), 2, "overwrite must not double-count");
        assert_eq!(s.get(10), Some(&row(3.0, 3)));
        assert_eq!(s.clock_of(10), Some(3));
        let lost = s.clear();
        assert_eq!(lost, vec![(10, 3), (11, 2)]);
    }
}
