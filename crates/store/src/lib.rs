//! Tiered row storage for the parameter server.
//!
//! HET's experiments run embedding tables of ~10⁷ keys; a flat
//! in-memory map per shard cannot hold paper-scale key spaces, so this
//! crate provides the MLKV-style alternative: a capacity-bounded **hot
//! tier** (plain map, demotion chosen by the `het-cache` policy zoo)
//! over a **cold tier** — an append-only log of `HET-CKPT v1` pages (the
//! checkpoint page layout, shared via [`page`]) with an in-memory
//! key→(segment, offset) index, garbage-ratio-triggered compaction, and
//! crash recovery by log replay.
//!
//! Both the flat store ([`MemStore`]) and the tiered store
//! ([`TieredStore`]) implement one trait, [`RowStore`], which is the
//! only interface the parameter server sees. Disk time is priced by
//! [`het_simnet::DiskSpec`] (seek + per-byte, the α-β shape of the
//! message model) and accrued per store; the server drains it with
//! [`RowStore::take_io_ns`] into the same simulated clocks that carry
//! network time. Every decision — demotion victims, page placement,
//! compaction triggers — is a deterministic function of the operation
//! stream, so same seed → byte-identical reports and traces holds with
//! either store.

#![warn(missing_docs)]

mod cold;
pub mod mem;
pub mod page;
pub mod tiered;

pub use mem::MemStore;
pub use page::PageRow;
pub use tiered::TieredStore;

use het_cache::PolicyKind;
use het_simnet::DiskSpec;
use std::path::PathBuf;

/// An embedding key (feature ID) — the same alias as `het_ps::Key`.
pub type Key = u64;

/// One stored embedding row: vector, global clock `c_g`, and optimiser
/// state (empty for SGD, the Adagrad accumulator otherwise).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StoredRow {
    /// The embedding vector (length = dim).
    pub vector: Vec<f32>,
    /// The global Lamport clock — total updates applied so far.
    pub clock: u64,
    /// Optimiser state (empty for SGD).
    pub opt_state: Vec<f32>,
}

/// Cumulative tier statistics for one store. All zeros for the flat
/// in-memory store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Row accesses served from the hot tier.
    pub hot_hits: u64,
    /// Rows read back (promoted) from the cold tier.
    pub promotions: u64,
    /// Rows appended to the cold log on demotion.
    pub demotions: u64,
    /// Demotions that needed no write because the cold copy was
    /// current (the row was never modified while hot).
    pub clean_drops: u64,
    /// Bytes read from the cold tier (promotions + compaction reads).
    pub cold_read_bytes: u64,
    /// Bytes appended to the cold tier (demotions + compaction writes).
    pub cold_write_bytes: u64,
    /// Cumulative modelled disk time in nanoseconds (including
    /// compaction).
    pub io_ns: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Garbage bytes reclaimed by compaction.
    pub reclaimed_bytes: u64,
}

impl StoreStats {
    /// Fraction of row accesses served without touching the cold tier
    /// (1.0 when nothing was ever promoted).
    pub fn hot_hit_rate(&self) -> f64 {
        let total = self.hot_hits + self.promotions;
        if total == 0 {
            1.0
        } else {
            self.hot_hits as f64 / total as f64
        }
    }

    /// Adds another store's counters into this one (for summing across
    /// shards).
    pub fn accumulate(&mut self, other: &StoreStats) {
        self.hot_hits += other.hot_hits;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.clean_drops += other.clean_drops;
        self.cold_read_bytes += other.cold_read_bytes;
        self.cold_write_bytes += other.cold_write_bytes;
        self.io_ns += other.io_ns;
        self.compactions += other.compactions;
        self.reclaimed_bytes += other.reclaimed_bytes;
    }
}

/// The row-storage interface the parameter server programs against.
///
/// Implementations must be deterministic: the same sequence of calls
/// produces the same returns, the same tier movements, and the same
/// accrued I/O time. `Sync` is required because the server hands out
/// `&Shard` to concurrent readers; the `&self` methods here are
/// read-only.
pub trait RowStore: Send + Sync {
    /// Read access to a row; a tiered store may promote a cold row into
    /// the hot tier (charging modelled read time), but the row is not
    /// marked dirty. `None` for unmaterialised keys.
    fn get(&mut self, key: Key) -> Option<&StoredRow>;

    /// Read-modify-write with lazy initialisation: ensures the row is
    /// resident (promoting, or creating it via `init`), applies `f`,
    /// and marks the row dirty so a later demotion writes it back.
    fn apply(
        &mut self,
        key: Key,
        init: &mut dyn FnMut() -> StoredRow,
        f: &mut dyn FnMut(&mut StoredRow),
    );

    /// Installs a row verbatim, overwriting any existing copy in any
    /// tier (the checkpoint-restore path).
    fn insert(&mut self, key: Key, row: StoredRow);

    /// Removes a row from every tier, returning it (the shard-migration
    /// path; reading a cold row back charges modelled read time).
    fn remove(&mut self, key: Key) -> Option<StoredRow>;

    /// Reads a row without changing tier residency or policy state — a
    /// cold row is read in place (charging modelled read time), not
    /// promoted. The observer path: snapshots, exports, and debugging
    /// must not perturb what a training run would otherwise do.
    fn peek(&mut self, key: Key) -> Option<StoredRow>;

    /// True when the key is materialised in any tier. Never mutates
    /// tier or policy state — split routing dual-reads through this.
    fn contains(&self, key: Key) -> bool;

    /// Clock-only query (`CheckValid` condition 2). Served from the hot
    /// tier or the in-memory cold index — never touches the disk model,
    /// mirroring how the wire protocol sends clocks without payloads.
    fn clock_of(&self, key: Key) -> Option<u64>;

    /// Number of materialised rows across all tiers.
    fn len(&self) -> usize;

    /// True when no row is materialised.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every materialised key, ascending — the deterministic iteration
    /// order for export, checkpoint, and migration planning.
    fn sorted_keys(&self) -> Vec<Key>;

    /// Every materialised row, ascending by key, read via [`peek`] so a
    /// full-table export (the checkpoint path) cannot thrash the hot
    /// tier.
    ///
    /// [`peek`]: RowStore::peek
    fn export_rows(&mut self) -> Vec<(Key, StoredRow)> {
        self.sorted_keys()
            .into_iter()
            .map(|k| {
                let row = self.peek(k).expect("sorted_keys listed the key");
                (k, row)
            })
            .collect()
    }

    /// Drops every row in every tier, returning `(key, clock)` pairs
    /// ascending (the shard-loss path: the failover ledger needs the
    /// clocks that were live).
    fn clear(&mut self) -> Vec<(Key, u64)>;

    /// Rows currently resident in memory (== `len()` for the flat
    /// store; the hot-tier occupancy for the tiered store).
    fn resident_rows(&self) -> usize {
        self.len()
    }

    /// Drains modelled disk nanoseconds accrued since the last call
    /// (always 0 for the flat store). The server forwards this into the
    /// simulated clock of whichever operation triggered the I/O.
    fn take_io_ns(&mut self) -> u64 {
        0
    }

    /// Cumulative tier statistics (all zeros for the flat store).
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

/// Which row store a server shard should use. Carried by trainer and
/// serving configs; [`StoreSpec::Mem`] reproduces the historical flat
/// map byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum StoreSpec {
    /// The flat in-memory map (the default; no I/O model, no tiers).
    #[default]
    Mem,
    /// The tiered hot/cold store.
    Tiered(TieredConfig),
}

impl StoreSpec {
    /// Builds the store for one shard. `n_shards` is the server's
    /// physical shard count: a tiered spec's `hot_rows` budget is total
    /// across the server, so each shard gets an equal slice (floored at
    /// one row).
    ///
    /// # Panics
    /// Panics if a tiered spec's spill directory cannot be created
    /// (simulation-fatal: there is nowhere to put the cold tier).
    pub fn build_shard(&self, dim: usize, shard: usize, n_shards: usize) -> Box<dyn RowStore> {
        match self {
            StoreSpec::Mem => Box::new(MemStore::new()),
            StoreSpec::Tiered(cfg) => {
                let per_shard = (cfg.hot_rows / n_shards.max(1)).max(1);
                Box::new(
                    TieredStore::open(cfg, dim, shard as u64, per_shard)
                        .expect("failed to open tiered store shard"),
                )
            }
        }
    }

    /// True for [`StoreSpec::Tiered`].
    pub fn is_tiered(&self) -> bool {
        matches!(self, StoreSpec::Tiered(_))
    }
}

/// Configuration of a [`TieredStore`].
#[derive(Clone, Debug, PartialEq)]
pub struct TieredConfig {
    /// Hot-tier capacity in rows, total across the server's shards.
    pub hot_rows: usize,
    /// Demotion policy for the hot tier (any of the `het-cache` zoo).
    pub policy: PolicyKind,
    /// Cold-tier spill directory. `None` keeps segments in memory —
    /// still exercising the full page/log/compaction machinery, which
    /// is what the deterministic tests and the oracle use. `Some(dir)`
    /// writes real segment files (each shard in `dir/shard-<idx>/`) and
    /// replays any that already exist (crash recovery).
    pub dir: Option<PathBuf>,
    /// Roll the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Compact when `garbage / total` appended bytes exceeds this.
    pub gc_ratio: f64,
    /// ... and total appended bytes exceed this floor (avoids churning
    /// tiny logs).
    pub gc_min_bytes: u64,
    /// The device model pricing cold reads and writes.
    pub disk: DiskSpec,
}

impl TieredConfig {
    /// A tiered store with `hot_rows` total hot rows and defaults
    /// everywhere else: LRU demotion, in-memory segments, 4 MiB
    /// segments, compaction at 50% garbage past 64 KiB, NVMe pricing.
    pub fn new(hot_rows: usize) -> Self {
        TieredConfig {
            hot_rows,
            policy: PolicyKind::Lru,
            dir: None,
            segment_bytes: 4 << 20,
            gc_ratio: 0.5,
            gc_min_bytes: 64 << 10,
            disk: DiskSpec::nvme(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_hit_rate_handles_empty_and_mixed() {
        let mut s = StoreStats::default();
        assert_eq!(s.hot_hit_rate(), 1.0);
        s.hot_hits = 3;
        s.promotions = 1;
        assert!((s.hot_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate_sums_fields() {
        let mut a = StoreStats {
            hot_hits: 1,
            promotions: 2,
            demotions: 3,
            clean_drops: 4,
            cold_read_bytes: 5,
            cold_write_bytes: 6,
            io_ns: 7,
            compactions: 8,
            reclaimed_bytes: 9,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.hot_hits, 2);
        assert_eq!(a.reclaimed_bytes, 18);
    }

    #[test]
    fn default_spec_is_mem() {
        assert_eq!(StoreSpec::default(), StoreSpec::Mem);
        assert!(!StoreSpec::default().is_tiered());
        assert!(StoreSpec::Tiered(TieredConfig::new(8)).is_tiered());
    }

    #[test]
    fn build_shard_splits_hot_budget() {
        let spec = StoreSpec::Tiered(TieredConfig::new(100));
        let store = spec.build_shard(4, 0, 8);
        assert_eq!(store.resident_rows(), 0);
        // Budget is divided: capacity is per-shard, verified indirectly
        // by the tiered tests; here we only check construction works.
        let mem = StoreSpec::Mem.build_shard(4, 0, 8);
        assert_eq!(mem.len(), 0);
    }
}
