//! The shared page encoding: `HET-CKPT v1`.
//!
//! One self-describing text page — header, one row per line, checksummed
//! footer:
//!
//! ```text
//! HET-CKPT v1 dim=<D>
//! <key> <clock> <v0> <v1> … <vD-1>
//! HET-CKPT-END rows=<N> crc=<FNV-1a-64 of header+rows, hex>
//! ```
//!
//! This is both the checkpoint format (`het-ps::checkpoint` wraps it)
//! and the unit of the tiered store's cold tier, where each appended
//! page holds one spilled row. Sharing one implementation means the two
//! on-disk formats cannot drift — a byte-layout test in this module and
//! a round-trip test in `het-ps` pin it from both sides.
//!
//! The footer makes corruption detectable: a truncated page is missing
//! it (or has fewer rows than it claims), and a flipped byte anywhere in
//! the header or rows changes the checksum. Readers additionally reject
//! non-finite vector values — both checkpoints and the cold log are
//! recovery paths of record, so a bad page must fail loudly at read
//! time. Duplicate keys *within* one page are allowed at this layer (the
//! cold tier uses a same-key follow-up row to carry optimiser state);
//! the checkpoint reader layers its own duplicate rejection on top.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// One encoded embedding row.
#[derive(Clone, Debug, PartialEq)]
pub struct PageRow {
    /// The embedding key.
    pub key: u64,
    /// The global clock `c_g`.
    pub clock: u64,
    /// The embedding vector.
    pub vector: Vec<f32>,
}

/// FNV-1a 64-bit, the checksum in the `HET-CKPT-END` footer. Chosen for
/// being tiny, dependency-free, and byte-order independent; this is a
/// corruption check, not a cryptographic seal.
pub fn fnv1a64(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// The FNV-1a offset basis (initial state).
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes one page of `rows` (any order; vectors must match `dim` and be
/// finite — violations are rejected, since a page that cannot be read
/// back is worse than no page).
pub fn write_page<W: Write>(w: W, dim: usize, rows: &[PageRow]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let mut crc = FNV_OFFSET;
    let header = format!("HET-CKPT v1 dim={dim}\n");
    crc = fnv1a64(header.as_bytes(), crc);
    w.write_all(header.as_bytes())?;
    let mut line = String::new();
    for row in rows {
        if row.vector.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {} has dim {} != {}", row.key, row.vector.len(), dim),
            ));
        }
        if row.vector.iter().any(|v| !v.is_finite()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {} contains a non-finite value", row.key),
            ));
        }
        line.clear();
        line.push_str(&format!("{} {}", row.key, row.clock));
        for v in &row.vector {
            line.push_str(&format!(" {v}"));
        }
        line.push('\n');
        crc = fnv1a64(line.as_bytes(), crc);
        w.write_all(line.as_bytes())?;
    }
    writeln!(w, "HET-CKPT-END rows={} crc={:016x}", rows.len(), crc)?;
    w.flush()
}

/// [`write_page`] into a fresh buffer — the cold tier's append unit.
pub fn encode_page(dim: usize, rows: &[PageRow]) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_page(&mut buf, dim, rows)?;
    Ok(buf)
}

/// Reads one page, returning `(dim, rows)`.
///
/// Rejects: a bad or missing header, a missing/malformed footer
/// (truncation), a row-count or checksum mismatch, and
/// short/long/non-finite vectors. Duplicate keys are *not* rejected
/// here — see the module docs.
pub fn read_page<R: Read>(r: R) -> io::Result<(usize, Vec<PageRow>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| data_err("empty checkpoint".to_string()))??;
    let dim = header
        .strip_prefix("HET-CKPT v1 dim=")
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or_else(|| data_err(format!("bad header: {header}")))?;
    let mut crc = fnv1a64(format!("{header}\n").as_bytes(), FNV_OFFSET);
    let mut rows: Vec<PageRow> = Vec::new();
    let mut footer: Option<String> = None;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("HET-CKPT-END ") {
            footer = Some(rest.to_string());
            break;
        }
        if line.is_empty() {
            continue;
        }
        crc = fnv1a64(format!("{line}\n").as_bytes(), crc);
        let mut parts = line.split_ascii_whitespace();
        let parse_err = |what: &str| data_err(format!("line {}: bad {what}", lineno + 2));
        let key: u64 = parts
            .next()
            .ok_or_else(|| parse_err("key"))?
            .parse()
            .map_err(|_| parse_err("key"))?;
        let clock: u64 = parts
            .next()
            .ok_or_else(|| parse_err("clock"))?
            .parse()
            .map_err(|_| parse_err("clock"))?;
        let vector: Vec<f32> = parts
            .map(|p| p.parse::<f32>().map_err(|_| parse_err("value")))
            .collect::<Result<_, _>>()?;
        if vector.len() != dim {
            return Err(parse_err("vector length"));
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(data_err(format!(
                "line {}: non-finite value for key {key}",
                lineno + 2
            )));
        }
        rows.push(PageRow { key, clock, vector });
    }
    let footer = footer.ok_or_else(|| data_err("truncated checkpoint: missing footer".into()))?;
    let (rows_part, crc_part) = footer
        .split_once(' ')
        .ok_or_else(|| data_err(format!("bad footer: {footer}")))?;
    let claimed_rows: usize = rows_part
        .strip_prefix("rows=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| data_err(format!("bad footer row count: {footer}")))?;
    let claimed_crc: u64 = crc_part
        .strip_prefix("crc=")
        .and_then(|c| u64::from_str_radix(c, 16).ok())
        .ok_or_else(|| data_err(format!("bad footer checksum: {footer}")))?;
    if claimed_rows != rows.len() {
        return Err(data_err(format!(
            "truncated checkpoint: footer claims {claimed_rows} rows, found {}",
            rows.len()
        )));
    }
    if claimed_crc != crc {
        return Err(data_err(format!(
            "checkpoint checksum mismatch: footer {claimed_crc:016x}, computed {crc:016x}"
        )));
    }
    Ok((dim, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_rows() -> Vec<PageRow> {
        vec![
            PageRow {
                key: 3,
                clock: 7,
                vector: vec![1.5, -0.25],
            },
            PageRow {
                key: 9,
                clock: 0,
                vector: vec![0.0, 42.0],
            },
        ]
    }

    #[test]
    fn round_trip_through_buffer() {
        let rows = demo_rows();
        let buf = encode_page(2, &rows).unwrap();
        let (dim, restored) = read_page(buf.as_slice()).unwrap();
        assert_eq!(dim, 2);
        assert_eq!(restored, rows);
    }

    /// Pins the byte layout. The same bytes are produced by
    /// `het-ps::checkpoint` (which delegates here) and consumed by the
    /// cold tier's log replay — if this test needs updating, every
    /// existing checkpoint and cold log on disk breaks.
    #[test]
    fn byte_layout_is_pinned() {
        let buf = encode_page(2, &demo_rows()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "HET-CKPT v1 dim=2\n\
             3 7 1.5 -0.25\n\
             9 0 0 42\n\
             HET-CKPT-END rows=2 crc=c57fef519998112c\n"
        );
    }

    #[test]
    fn fnv_vector_matches_reference() {
        // FNV-1a 64 of "a" from the reference implementation.
        assert_eq!(fnv1a64(b"a", FNV_OFFSET), 0xaf63dc4c8601ec8c);
        // Empty input is the offset basis.
        assert_eq!(fnv1a64(b"", FNV_OFFSET), FNV_OFFSET);
    }

    #[test]
    fn duplicate_keys_allowed_at_page_layer() {
        let rows = vec![
            PageRow {
                key: 5,
                clock: 1,
                vector: vec![0.5],
            },
            PageRow {
                key: 5,
                clock: 0,
                vector: vec![2.0],
            },
        ];
        let buf = encode_page(1, &rows).unwrap();
        let (_, restored) = read_page(buf.as_slice()).unwrap();
        assert_eq!(restored, rows);
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let buf = encode_page(2, &demo_rows()).unwrap();
        let text = String::from_utf8(buf).unwrap();

        let cut = &text[..text.rfind("HET-CKPT-END").unwrap()];
        let err = read_page(cut.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing footer"), "{err}");

        let tampered = text.replacen("3 7 ", "3 8 ", 1);
        let err = read_page(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn non_finite_rejected_both_ways() {
        let rows = vec![PageRow {
            key: 1,
            clock: 0,
            vector: vec![f32::NAN, 0.0],
        }];
        assert!(encode_page(2, &rows).is_err());
        let text = "HET-CKPT v1 dim=2\n1 0 0.5 inf\nHET-CKPT-END rows=1 crc=0\n";
        let err = read_page(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn wrong_dim_write_rejected() {
        let rows = vec![PageRow {
            key: 1,
            clock: 0,
            vector: vec![0.0; 3],
        }];
        assert!(encode_page(2, &rows).is_err());
    }
}
