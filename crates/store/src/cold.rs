//! The cold tier: an append-only log of `HET-CKPT v1` pages.
//!
//! Rows demoted from the hot tier are appended as single-row pages
//! (plus a same-key follow-up row when the row carries optimiser
//! state) to the active segment; an in-memory index maps each key to
//! its latest `(segment, offset, len)` plus the clock, so clock-only
//! queries never touch the disk model. Overwrites mark the superseded
//! page as garbage; when the garbage ratio crosses the configured
//! threshold, a compaction pass rewrites the live rows (ascending key
//! order, so it is deterministic) into fresh segments and drops the old
//! ones.
//!
//! Segments live either in memory (`dir: None` — the deterministic
//! test/oracle configuration) or as `seg-<id>.log` files under a shard
//! directory. Opening a file-backed log replays any existing segments
//! in id order — later pages win, and a torn or corrupt tail page
//! (detected by the page footer/checksum) ends that segment's replay,
//! which is the crash-recovery path.

use crate::page::{self, PageRow};
use crate::{Key, StoredRow};
use het_simnet::DiskSpec;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where a key's latest page lives, plus its clock (kept in memory so
/// `CheckValid` clock queries are free, like the wire protocol's
/// clock-only messages).
#[derive(Clone, Copy, Debug)]
struct ColdEntry {
    seg: u32,
    offset: u32,
    len: u32,
    clock: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct SegMeta {
    /// Bytes appended (including any torn tail found at replay).
    len: u64,
    /// Bytes no longer live (superseded or removed pages, torn tails).
    dead: u64,
}

enum Backend {
    Mem(HashMap<u32, Vec<u8>>),
    File {
        dir: PathBuf,
        /// Kept open across appends to the same segment.
        active: Option<(u32, fs::File)>,
    },
}

impl Backend {
    fn seg_path(dir: &Path, seg: u32) -> PathBuf {
        dir.join(format!("seg-{seg:08}.log"))
    }

    fn append(&mut self, seg: u32, bytes: &[u8]) -> io::Result<()> {
        match self {
            Backend::Mem(segs) => {
                segs.entry(seg).or_default().extend_from_slice(bytes);
                Ok(())
            }
            Backend::File { dir, active } => {
                if active.as_ref().map(|(s, _)| *s) != Some(seg) {
                    let f = fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(Self::seg_path(dir, seg))?;
                    *active = Some((seg, f));
                }
                let (_, f) = active.as_mut().expect("active segment just set");
                f.write_all(bytes)?;
                f.flush()
            }
        }
    }

    fn read(&mut self, seg: u32, offset: u32, len: u32) -> io::Result<Vec<u8>> {
        match self {
            Backend::Mem(segs) => {
                let data = segs
                    .get(&seg)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
                let start = offset as usize;
                let end = start + len as usize;
                if end > data.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "page beyond segment end",
                    ));
                }
                Ok(data[start..end].to_vec())
            }
            Backend::File { dir, .. } => {
                let mut f = fs::File::open(Self::seg_path(dir, seg))?;
                f.seek(SeekFrom::Start(offset as u64))?;
                let mut buf = vec![0u8; len as usize];
                f.read_exact(&mut buf)?;
                Ok(buf)
            }
        }
    }

    fn remove_segment(&mut self, seg: u32) -> io::Result<()> {
        match self {
            Backend::Mem(segs) => {
                segs.remove(&seg);
                Ok(())
            }
            Backend::File { dir, active } => {
                if active.as_ref().map(|(s, _)| *s) == Some(seg) {
                    *active = None;
                }
                fs::remove_file(Self::seg_path(dir, seg))
            }
        }
    }
}

/// Decodes one page into a row. A page is one data row, optionally
/// followed by a same-key row carrying the optimiser state.
fn decode_row(dim: usize, bytes: &[u8]) -> io::Result<StoredRow> {
    let (page_dim, mut rows) = page::read_page(bytes)?;
    if page_dim != dim {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cold page dim {page_dim} != store dim {dim}"),
        ));
    }
    match rows.len() {
        1 => {
            let r = rows.pop().expect("len checked");
            Ok(StoredRow {
                vector: r.vector,
                clock: r.clock,
                opt_state: Vec::new(),
            })
        }
        2 if rows[0].key == rows[1].key => {
            let opt = rows.pop().expect("len checked");
            let r = rows.pop().expect("len checked");
            Ok(StoredRow {
                vector: r.vector,
                clock: r.clock,
                opt_state: opt.vector,
            })
        }
        n => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cold page has unexpected shape ({n} rows)"),
        )),
    }
}

pub(crate) struct ColdLog {
    dim: usize,
    backend: Backend,
    index: HashMap<Key, ColdEntry>,
    segs: BTreeMap<u32, SegMeta>,
    next_seg: u32,
    /// The segment currently receiving appends (`None` until the first
    /// append after open — recovery never appends to a replayed
    /// segment, so a torn tail can never be written after).
    active: Option<u32>,
    segment_bytes: u64,
    gc_ratio: f64,
    gc_min_bytes: u64,
    disk: DiskSpec,
    /// Modelled nanoseconds not yet drained by `take_io_ns`.
    pending_io_ns: u64,
    // Cumulative counters, surfaced through `StoreStats`.
    pub(crate) read_bytes: u64,
    pub(crate) write_bytes: u64,
    pub(crate) io_ns_total: u64,
    pub(crate) compactions: u64,
    pub(crate) reclaimed_bytes: u64,
}

impl ColdLog {
    /// Opens the log, replaying existing segments for a file-backed
    /// directory. Returns the log and the number of rows recovered.
    pub(crate) fn open(
        dim: usize,
        dir: Option<PathBuf>,
        segment_bytes: u64,
        gc_ratio: f64,
        gc_min_bytes: u64,
        disk: DiskSpec,
    ) -> io::Result<(Self, usize)> {
        assert!(dim > 0, "cold tier dimension must be positive");
        assert!(segment_bytes > 0, "segment size must be positive");
        assert!(
            (0.0..=1.0).contains(&gc_ratio),
            "gc_ratio must be in [0, 1], got {gc_ratio}"
        );
        let mut log = ColdLog {
            dim,
            backend: match dir {
                None => Backend::Mem(HashMap::new()),
                Some(dir) => {
                    fs::create_dir_all(&dir)?;
                    Backend::File { dir, active: None }
                }
            },
            index: HashMap::new(),
            segs: BTreeMap::new(),
            next_seg: 0,
            active: None,
            segment_bytes,
            gc_ratio,
            gc_min_bytes,
            disk,
            pending_io_ns: 0,
            read_bytes: 0,
            write_bytes: 0,
            io_ns_total: 0,
            compactions: 0,
            reclaimed_bytes: 0,
        };
        let recovered = log.replay()?;
        Ok((log, recovered))
    }

    /// Replays existing segment files in id order (no-op for the memory
    /// backend). Later pages win; a torn/corrupt tail ends a segment's
    /// replay and its remaining bytes are accounted as garbage.
    fn replay(&mut self) -> io::Result<usize> {
        let Backend::File { dir, .. } = &self.backend else {
            return Ok(0);
        };
        let mut seg_ids: Vec<u32> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();
        let dir = dir.clone();
        for seg in seg_ids {
            let bytes = fs::read(Backend::seg_path(&dir, seg))?;
            let mut pos = 0usize;
            while pos < bytes.len() {
                let rest = &bytes[pos..];
                let Some(page_len) = page_span(rest) else {
                    break; // torn or corrupt tail: stop replaying here
                };
                let slice = &rest[..page_len];
                // Validate the full page shape (dim, checksum, opt-state
                // layout) exactly as a later read would.
                if decode_row(self.dim, slice).is_err() {
                    break;
                }
                let (_, rows) = page::read_page(slice).expect("validated above");
                self.install(
                    rows[0].key,
                    ColdEntry {
                        seg,
                        offset: pos as u32,
                        len: page_len as u32,
                        clock: rows[0].clock,
                    },
                );
                pos += page_len;
            }
            let meta = self.segs.entry(seg).or_default();
            meta.len = bytes.len() as u64;
            // Anything past the last valid page is garbage.
            meta.dead += bytes.len() as u64 - pos as u64;
            self.next_seg = self.next_seg.max(seg + 1);
        }
        Ok(self.index.len())
    }

    /// Points the index at a new page, accounting the superseded one as
    /// garbage.
    fn install(&mut self, key: Key, entry: ColdEntry) {
        if let Some(old) = self.index.insert(key, entry) {
            if let Some(meta) = self.segs.get_mut(&old.seg) {
                meta.dead += old.len as u64;
            }
        }
    }

    fn charge_read(&mut self, bytes: u64) {
        let ns = self.disk.read_time(bytes).as_nanos();
        self.pending_io_ns += ns;
        self.io_ns_total += ns;
        self.read_bytes += bytes;
    }

    fn charge_write(&mut self, bytes: u64) {
        let ns = self.disk.write_time(bytes).as_nanos();
        self.pending_io_ns += ns;
        self.io_ns_total += ns;
        self.write_bytes += bytes;
    }

    fn encode(&self, key: Key, row: &StoredRow) -> io::Result<Vec<u8>> {
        let mut rows = vec![PageRow {
            key,
            clock: row.clock,
            vector: row.vector.clone(),
        }];
        if !row.opt_state.is_empty() {
            assert_eq!(
                row.opt_state.len(),
                self.dim,
                "optimiser state dimension must match the embedding dim to page out"
            );
            rows.push(PageRow {
                key,
                clock: row.clock,
                vector: row.opt_state.clone(),
            });
        }
        page::encode_page(self.dim, &rows)
    }

    /// Appends `row` as the new latest page for `key`, charging one
    /// random write, then compacts if the garbage ratio crossed the
    /// threshold.
    pub(crate) fn append_row(&mut self, key: Key, row: &StoredRow) -> io::Result<()> {
        let bytes = self.encode(key, row)?;
        let entry = self.append_page(key, row.clock, &bytes)?;
        self.install(key, entry);
        self.charge_write(bytes.len() as u64);
        self.maybe_compact()
    }

    /// Low-level append of an encoded page; rolls the active segment at
    /// the size threshold. Does not touch the index or the disk model.
    fn append_page(&mut self, _key: Key, clock: u64, bytes: &[u8]) -> io::Result<ColdEntry> {
        let seg = match self.active {
            Some(seg)
                if self.segs.get(&seg).map_or(0, |m| m.len) + bytes.len() as u64
                    <= self.segment_bytes =>
            {
                seg
            }
            _ => {
                let seg = self.next_seg;
                self.next_seg += 1;
                self.active = Some(seg);
                self.segs.insert(seg, SegMeta::default());
                seg
            }
        };
        let meta = self.segs.get_mut(&seg).expect("segment registered");
        let offset = meta.len;
        meta.len += bytes.len() as u64;
        self.backend.append(seg, bytes)?;
        Ok(ColdEntry {
            seg,
            offset: offset as u32,
            len: bytes.len() as u32,
            clock,
        })
    }

    /// Reads the latest page for `key`, charging one random read. The
    /// index entry stays — the cold copy remains valid until the hot
    /// tier dirties the row.
    pub(crate) fn read_row(&mut self, key: Key) -> io::Result<Option<StoredRow>> {
        let Some(entry) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        let bytes = self.backend.read(entry.seg, entry.offset, entry.len)?;
        self.charge_read(entry.len as u64);
        decode_row(self.dim, &bytes).map(Some)
    }

    /// Removes `key` entirely, returning its row (one random read).
    pub(crate) fn remove(&mut self, key: Key) -> io::Result<Option<StoredRow>> {
        let row = self.read_row(key)?;
        if row.is_some() {
            self.mark_dead(key);
        }
        Ok(row)
    }

    /// Drops `key` from the index without reading it (the overwrite
    /// path: a verbatim insert makes the cold copy garbage).
    pub(crate) fn mark_dead(&mut self, key: Key) {
        if let Some(old) = self.index.remove(&key) {
            if let Some(meta) = self.segs.get_mut(&old.seg) {
                meta.dead += old.len as u64;
            }
        }
    }

    pub(crate) fn contains(&self, key: Key) -> bool {
        self.index.contains_key(&key)
    }

    pub(crate) fn clock_of(&self, key: Key) -> Option<u64> {
        self.index.get(&key).map(|e| e.clock)
    }

    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.index.keys().copied()
    }

    pub(crate) fn clocks(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.index.iter().map(|(&k, e)| (k, e.clock))
    }

    /// Total and dead appended bytes across all segments.
    pub(crate) fn garbage(&self) -> (u64, u64) {
        let mut total = 0;
        let mut dead = 0;
        for meta in self.segs.values() {
            total += meta.len;
            dead += meta.dead;
        }
        (total, dead)
    }

    fn maybe_compact(&mut self) -> io::Result<()> {
        let (total, dead) = self.garbage();
        if total >= self.gc_min_bytes && dead as f64 > self.gc_ratio * total as f64 {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites every live row, ascending by key, into fresh segments
    /// and drops the old ones. Sequential I/O: one seek per old segment
    /// read plus per-byte, one seek per new segment written plus
    /// per-byte — unlike promotions, which pay a seek per page.
    pub(crate) fn compact(&mut self) -> io::Result<()> {
        let (total_before, dead_before) = self.garbage();
        let mut live: Vec<Key> = self.index.keys().copied().collect();
        live.sort_unstable();

        // Read every live row (per-segment sequential cost).
        let mut per_seg_read: BTreeMap<u32, u64> = BTreeMap::new();
        let mut rows: Vec<(Key, StoredRow)> = Vec::with_capacity(live.len());
        for &key in &live {
            let entry = self.index[&key];
            let bytes = self.backend.read(entry.seg, entry.offset, entry.len)?;
            *per_seg_read.entry(entry.seg).or_insert(0) += entry.len as u64;
            rows.push((key, decode_row(self.dim, &bytes)?));
        }
        for (_, bytes) in per_seg_read {
            let ns = self.disk.read_time(bytes).as_nanos();
            self.pending_io_ns += ns;
            self.io_ns_total += ns;
            self.read_bytes += bytes;
        }

        // Drop the old generation.
        let old_segs: Vec<u32> = self.segs.keys().copied().collect();
        for seg in old_segs {
            self.backend.remove_segment(seg)?;
        }
        self.segs.clear();
        self.index.clear();
        self.active = None;

        // Rewrite live rows sequentially (per-new-segment write cost).
        let mut seg_written: BTreeMap<u32, u64> = BTreeMap::new();
        for (key, row) in rows {
            let bytes = self.encode(key, &row)?;
            let entry = self.append_page(key, row.clock, &bytes)?;
            *seg_written.entry(entry.seg).or_insert(0) += bytes.len() as u64;
            self.index.insert(key, entry);
        }
        for (_, bytes) in seg_written {
            let ns = self.disk.write_time(bytes).as_nanos();
            self.pending_io_ns += ns;
            self.io_ns_total += ns;
            self.write_bytes += bytes;
        }

        let (total_after, _) = self.garbage();
        self.compactions += 1;
        self.reclaimed_bytes += total_before.saturating_sub(total_after);
        let _ = dead_before;
        Ok(())
    }

    /// Deletes every segment and resets the log (the shard-loss path).
    pub(crate) fn clear(&mut self) -> io::Result<()> {
        let old_segs: Vec<u32> = self.segs.keys().copied().collect();
        for seg in old_segs {
            self.backend.remove_segment(seg)?;
        }
        self.segs.clear();
        self.index.clear();
        self.active = None;
        Ok(())
    }

    pub(crate) fn take_io_ns(&mut self) -> u64 {
        std::mem::take(&mut self.pending_io_ns)
    }

    /// A deterministic text rendering of the index and segment state —
    /// the compaction tests compare this byte-for-byte across same-seed
    /// runs.
    pub(crate) fn index_fingerprint(&self) -> String {
        let mut keys: Vec<Key> = self.index.keys().copied().collect();
        keys.sort_unstable();
        let mut out = String::new();
        for key in keys {
            let e = self.index[&key];
            out.push_str(&format!(
                "{key} seg={} off={} len={} clock={}\n",
                e.seg, e.offset, e.len, e.clock
            ));
        }
        for (seg, meta) in &self.segs {
            out.push_str(&format!("seg {seg}: len={} dead={}\n", meta.len, meta.dead));
        }
        out
    }
}

/// Length of the page starting at the head of `bytes`, if a complete
/// one is present: from the `HET-CKPT v1` header through the newline
/// ending the `HET-CKPT-END` footer line.
fn page_span(bytes: &[u8]) -> Option<usize> {
    if !bytes.starts_with(b"HET-CKPT v1 ") {
        return None;
    }
    const FOOTER: &[u8] = b"\nHET-CKPT-END ";
    let footer_at = bytes.windows(FOOTER.len()).position(|w| w == FOOTER)?;
    let after = footer_at + FOOTER.len();
    let end = bytes[after..].iter().position(|&b| b == b'\n')?;
    Some(after + end + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvme_log() -> ColdLog {
        ColdLog::open(2, None, 1 << 20, 0.5, 1 << 30, DiskSpec::nvme())
            .unwrap()
            .0
    }

    fn row(v: f32, clock: u64) -> StoredRow {
        StoredRow {
            vector: vec![v, -v],
            clock,
            opt_state: Vec::new(),
        }
    }

    #[test]
    fn append_read_round_trip_charges_io() {
        let mut log = nvme_log();
        log.append_row(7, &row(1.5, 3)).unwrap();
        assert!(log.contains(7));
        assert_eq!(log.clock_of(7), Some(3));
        assert_eq!(log.read_row(7).unwrap(), Some(row(1.5, 3)));
        assert_eq!(log.read_row(8).unwrap(), None);
        let ns = log.take_io_ns();
        assert!(ns > 0, "one write and one read must cost time");
        assert_eq!(log.take_io_ns(), 0, "drained");
    }

    #[test]
    fn opt_state_survives_the_page_round_trip() {
        let mut log = nvme_log();
        let r = StoredRow {
            vector: vec![1.0, 2.0],
            clock: 9,
            opt_state: vec![0.5, 0.25],
        };
        log.append_row(4, &r).unwrap();
        assert_eq!(log.read_row(4).unwrap(), Some(r));
    }

    #[test]
    fn overwrites_accrue_garbage_and_compaction_reclaims() {
        let mut log = ColdLog::open(2, None, 1 << 20, 0.4, 0, DiskSpec::nvme())
            .unwrap()
            .0;
        // gc_min_bytes = 0 → the second version of the key makes ~50%
        // of the log garbage, strictly above the 40% trigger.
        log.append_row(1, &row(1.0, 1)).unwrap();
        log.append_row(1, &row(2.0, 2)).unwrap();
        assert_eq!(log.compactions, 1, "overwrite must have compacted");
        let (total, dead) = log.garbage();
        assert_eq!(dead, 0, "compaction leaves no garbage");
        assert!(total > 0);
        assert_eq!(log.read_row(1).unwrap(), Some(row(2.0, 2)));
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let mut log = ColdLog::open(2, None, 64, 0.9, 1 << 30, DiskSpec::nvme())
            .unwrap()
            .0;
        for k in 0..6u64 {
            log.append_row(k, &row(k as f32, k)).unwrap();
        }
        assert!(log.segs.len() > 1, "64-byte segments must roll");
        for k in 0..6u64 {
            assert_eq!(log.read_row(k).unwrap(), Some(row(k as f32, k)));
        }
    }

    #[test]
    fn page_span_finds_page_boundaries() {
        let page_bytes = page::encode_page(
            1,
            &[PageRow {
                key: 1,
                clock: 0,
                vector: vec![0.5],
            }],
        )
        .unwrap();
        assert_eq!(page_span(&page_bytes), Some(page_bytes.len()));
        let mut two = page_bytes.clone();
        two.extend_from_slice(&page_bytes);
        assert_eq!(page_span(&two), Some(page_bytes.len()));
        assert_eq!(page_span(b"garbage"), None);
        assert_eq!(page_span(&page_bytes[..page_bytes.len() - 4]), None);
    }

    #[test]
    fn file_backend_replays_after_drop() {
        let dir = std::env::temp_dir().join(format!("het-cold-replay-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let (mut log, recovered) = ColdLog::open(
                2,
                Some(dir.clone()),
                1 << 20,
                0.5,
                1 << 30,
                DiskSpec::nvme(),
            )
            .unwrap();
            assert_eq!(recovered, 0);
            for k in 0..20u64 {
                log.append_row(k, &row(k as f32, k + 1)).unwrap();
            }
            // Overwrite a few so replay must pick the later page.
            log.append_row(3, &row(33.0, 40)).unwrap();
            log.append_row(7, &row(77.0, 80)).unwrap();
        }
        let (mut log, recovered) = ColdLog::open(
            2,
            Some(dir.clone()),
            1 << 20,
            0.5,
            1 << 30,
            DiskSpec::nvme(),
        )
        .unwrap();
        assert_eq!(recovered, 20);
        assert_eq!(log.read_row(3).unwrap(), Some(row(33.0, 40)));
        assert_eq!(log.read_row(7).unwrap(), Some(row(77.0, 80)));
        assert_eq!(log.read_row(5).unwrap(), Some(row(5.0, 6)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_earlier_pages_survive() {
        let dir = std::env::temp_dir().join(format!("het-cold-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let (mut log, _) = ColdLog::open(
                2,
                Some(dir.clone()),
                1 << 20,
                0.5,
                1 << 30,
                DiskSpec::nvme(),
            )
            .unwrap();
            for k in 0..5u64 {
                log.append_row(k, &row(k as f32, k)).unwrap();
            }
        }
        // Simulate a crash mid-append: truncate the single segment file
        // inside its final page.
        let seg0 = dir.join("seg-00000000.log");
        let bytes = fs::read(&seg0).unwrap();
        fs::write(&seg0, &bytes[..bytes.len() - 7]).unwrap();

        let (mut log, recovered) = ColdLog::open(
            2,
            Some(dir.clone()),
            1 << 20,
            0.5,
            1 << 30,
            DiskSpec::nvme(),
        )
        .unwrap();
        assert_eq!(recovered, 4, "the torn final page must be dropped");
        for k in 0..4u64 {
            assert_eq!(log.read_row(k).unwrap(), Some(row(k as f32, k)));
        }
        assert_eq!(log.read_row(4).unwrap(), None);
        let (total, dead) = log.garbage();
        assert!(dead > 0, "torn bytes count as garbage");
        assert!(total >= dead);
        let _ = fs::remove_dir_all(&dir);
    }
}
