//! The flat in-memory row store — the historical `PsServer` shard map
//! behind the [`RowStore`] trait.

use crate::{Key, RowStore, StoredRow};
use std::collections::HashMap;

/// A plain `HashMap` of rows: every row is resident, no I/O is ever
/// modelled. Byte-identical in behaviour to the pre-trait flat map.
#[derive(Default)]
pub struct MemStore {
    table: HashMap<Key, StoredRow>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl RowStore for MemStore {
    fn get(&mut self, key: Key) -> Option<&StoredRow> {
        self.table.get(&key)
    }

    fn apply(
        &mut self,
        key: Key,
        init: &mut dyn FnMut() -> StoredRow,
        f: &mut dyn FnMut(&mut StoredRow),
    ) {
        f(self.table.entry(key).or_insert_with(init));
    }

    fn insert(&mut self, key: Key, row: StoredRow) {
        self.table.insert(key, row);
    }

    fn remove(&mut self, key: Key) -> Option<StoredRow> {
        self.table.remove(&key)
    }

    fn peek(&mut self, key: Key) -> Option<StoredRow> {
        self.table.get(&key).cloned()
    }

    fn contains(&self, key: Key) -> bool {
        self.table.contains_key(&key)
    }

    fn clock_of(&self, key: Key) -> Option<u64> {
        self.table.get(&key).map(|r| r.clock)
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn sorted_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.table.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn clear(&mut self) -> Vec<(Key, u64)> {
        let mut lost: Vec<(Key, u64)> = self.table.iter().map(|(&k, r)| (k, r.clock)).collect();
        self.table.clear();
        lost.sort_unstable();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32, clock: u64) -> StoredRow {
        StoredRow {
            vector: vec![v],
            clock,
            opt_state: Vec::new(),
        }
    }

    #[test]
    fn apply_initialises_then_mutates() {
        let mut s = MemStore::new();
        s.apply(7, &mut || row(1.0, 0), &mut |r| {
            r.vector[0] += 0.5;
            r.clock += 1;
        });
        assert_eq!(s.get(7), Some(&row(1.5, 1)));
        assert_eq!(s.clock_of(7), Some(1));
        assert_eq!(s.clock_of(8), None);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
        assert_eq!(s.take_io_ns(), 0, "flat store never models I/O");
    }

    #[test]
    fn sorted_keys_and_clear_are_ordered() {
        let mut s = MemStore::new();
        for k in [9u64, 1, 5] {
            s.insert(k, row(0.0, k));
        }
        assert_eq!(s.sorted_keys(), vec![1, 5, 9]);
        assert_eq!(s.clear(), vec![(1, 1), (5, 5), (9, 9)]);
        assert!(s.is_empty());
    }

    #[test]
    fn remove_returns_the_row() {
        let mut s = MemStore::new();
        s.insert(3, row(2.0, 4));
        assert_eq!(s.remove(3), Some(row(2.0, 4)));
        assert_eq!(s.remove(3), None);
    }
}
