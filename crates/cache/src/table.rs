//! The bounded cache embedding table.
//!
//! This is the state behind the paper's client operations. Network
//! actions (what `Fetch`/`Evict` transfer) live in `het-core`; this
//! module owns residency, clocks, gradient accumulation, and the
//! eviction policy. See the crate docs for the clock semantics.

use crate::entry::{CacheEntry, EvictedEntry};
use crate::policy::{fetch_cost_bytes, row_size_bytes, CachePolicy, PolicyKind};
use crate::stats::CacheStats;
use crate::Key;
use std::collections::HashMap;

/// A bounded per-worker cache of embeddings.
pub struct CacheTable {
    entries: HashMap<Key, CacheEntry>,
    policy: Box<dyn CachePolicy>,
    capacity: usize,
    /// Local SGD rate used to fold pending gradients into the local view
    /// (read-my-updates); matches the server's learning rate.
    lr: f32,
    stats: CacheStats,
    /// Number of resident entries whose `prefetched` flag is still set
    /// (the staging region): they do not count against `capacity` until
    /// their first hit clears the flag.
    pinned: usize,
    /// Serving mode: the write path (`update`/`bump_clock`) is a
    /// protocol violation and panics. See [`CacheTable::set_read_only`].
    read_only: bool,
}

impl CacheTable {
    /// Creates a cache holding at most `capacity` embeddings, evicting
    /// with `policy`, applying local updates at rate `lr`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: PolicyKind, lr: f32) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheTable {
            entries: HashMap::with_capacity(capacity + 1),
            policy: policy.build(capacity),
            capacity,
            lr,
            stats: CacheStats::default(),
            pinned: 0,
            read_only: false,
        }
    }

    /// Switches the table into (or out of) read-only serving mode.
    ///
    /// An inference replica only ever installs server-fetched vectors and
    /// evicts; it must never accumulate pending gradients, or its entries
    /// would silently go dirty and the replica would start pushing
    /// garbage on eviction. In read-only mode [`CacheTable::update`] and
    /// [`CacheTable::bump_clock`] panic instead.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// True when the table rejects the write path.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Maximum number of resident embeddings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident embeddings, including the prefetch
    /// staging region.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of unconsumed prefetched entries (the staging region) —
    /// these ride outside the capacity bound until their first hit.
    pub fn pinned_len(&self) -> usize {
        self.pinned
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of online policy switches the eviction policy performed
    /// (non-zero only for [`PolicyKind::Adaptive`]). Kept out of
    /// [`CacheStats`] so report bytes stay stable across policies; the
    /// `cache.policy_switches` trace counter mirrors it.
    pub fn policy_switches(&self) -> u64 {
        self.policy.switch_count()
    }

    /// Resets the counters (e.g. between measurement epochs).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// `Het.Cache.Find`: is the key resident? Does **not** count as a
    /// lookup; use [`CacheTable::record_hit`]/[`CacheTable::record_miss`]
    /// when the read protocol resolves.
    pub fn find(&self, key: Key) -> bool {
        self.entries.contains_key(&key)
    }

    /// Records a cache hit (the read was served locally).
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
        het_trace::count!("cache", "hits");
    }

    /// Records a cache miss (the read needed a server fetch).
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
        het_trace::count!("cache", "misses");
    }

    /// Immutable access to a resident entry.
    pub fn peek(&self, key: Key) -> Option<&CacheEntry> {
        self.entries.get(&key)
    }

    /// `Het.Cache.Get`: the locally visible vector (includes this
    /// worker's own updates), bumping the policy.
    pub fn get(&mut self, key: Key) -> Option<&[f32]> {
        if self.entries.contains_key(&key) {
            self.policy.on_access(key);
        }
        self.entries.get(&key).map(|e| e.vector.as_slice())
    }

    /// `Het.Cache.Fetch` landing: installs (or refreshes) a vector pulled
    /// from the server, setting `c_s = c_c = c_g`.
    ///
    /// Replacing a dirty resident entry would silently drop its pending
    /// gradient, so installing over one *displaces* it: the write-back
    /// payload is returned (and counted as a writeback) for the caller to
    /// push to the server, exactly as an explicit `evict` would have.
    /// Clean or absent entries return `None`.
    #[must_use = "a displaced dirty entry's pending gradient must be pushed, not dropped"]
    pub fn install(
        &mut self,
        key: Key,
        vector: Vec<f32>,
        global_clock: u64,
    ) -> Option<EvictedEntry> {
        if self.entries.get(&key).is_some_and(|e| e.prefetched) {
            // A resident prefetch is being overwritten by a demand
            // fetch before it ever served a read: that is waste.
            self.record_prefetch_waste();
            self.pinned -= 1;
        }
        let displaced = match self.entries.get(&key) {
            Some(old) if old.dirty => {
                let e = self.entries.remove(&key).expect("resident entry");
                self.policy.on_access(key);
                self.stats.writebacks += 1;
                het_trace::count!("cache", "writebacks");
                Some(EvictedEntry {
                    pending_grad: e.pending_grad,
                    current_clock: e.current_clock,
                    dirty: true,
                })
            }
            Some(_) => {
                self.policy.on_access(key);
                None
            }
            None => {
                // Price the insert for cost-aware policies (GDSF): the
                // α-β refetch cost and cache footprint of this row.
                let dim = vector.len();
                self.policy
                    .on_insert_cost(key, fetch_cost_bytes(dim), row_size_bytes(dim));
                het_trace::count!("cache", "installs");
                None
            }
        };
        self.entries
            .insert(key, CacheEntry::fetched(vector, global_clock));
        displaced
    }

    /// Prefetch landing: like [`CacheTable::install`], but the entry is
    /// flagged as prefetched until its first hit. The vector and clock
    /// were captured when the lookahead pull was *issued*, so the entry
    /// can only be as old as or older than a demand fetch landing at
    /// the same instant — a prefetch can never let a read observe a
    /// value newer than `CheckValid` allows.
    #[must_use = "a displaced dirty entry's pending gradient must be pushed, not dropped"]
    pub fn install_prefetched(
        &mut self,
        key: Key,
        vector: Vec<f32>,
        global_clock: u64,
    ) -> Option<EvictedEntry> {
        let displaced = self.install(key, vector, global_clock);
        let e = self.entries.get_mut(&key).expect("entry just installed");
        e.prefetched = true;
        self.pinned += 1;
        self.stats.prefetch_installs += 1;
        het_trace::count!("cache", "prefetch_installs");
        displaced
    }

    /// Clears a resident entry's prefetch flag on its first read,
    /// counting a prefetch hit. Returns true when this read is the one
    /// that redeemed the prefetch; subsequent reads of the same entry
    /// are ordinary demand hits.
    pub fn consume_prefetch(&mut self, key: Key) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) if e.prefetched => {
                e.prefetched = false;
                self.pinned -= 1;
                self.stats.prefetch_hits += 1;
                het_trace::count!("cache", "prefetch_hits");
                true
            }
            _ => false,
        }
    }

    fn record_prefetch_waste(&mut self) {
        self.stats.prefetch_wasted += 1;
        het_trace::count!("cache", "prefetch_wasted");
    }

    /// `Het.Cache.Update`: accumulates a raw gradient against the key and
    /// applies it to the local view (read-my-updates). Does **not** bump
    /// `c_c` — the protocol calls [`CacheTable::bump_clock`] once per
    /// iteration that updated the key (paper `Het.Cache.Clock`).
    ///
    /// # Panics
    /// Panics if the key is not resident, the gradient has the wrong
    /// dimension, or the table is read-only — all protocol violations.
    pub fn update(&mut self, key: Key, grad: &[f32]) {
        assert!(
            !self.read_only,
            "gradient accumulation against a read-only serving cache"
        );
        let lr = self.lr;
        let e = self
            .entries
            .get_mut(&key)
            .expect("update of a non-resident key");
        assert_eq!(e.vector.len(), grad.len(), "gradient dimension mismatch");
        for ((v, p), &g) in e.vector.iter_mut().zip(e.pending_grad.iter_mut()).zip(grad) {
            *v -= lr * g;
            *p += g;
        }
        let was_clean = !e.dirty;
        e.dirty = true;
        if was_clean {
            self.stats.dirtied += 1;
            het_trace::count!("cache", "dirtied");
        }
        self.policy.on_access(key);
    }

    /// `Het.Cache.Clock`: increments `c_c` by one.
    ///
    /// # Panics
    /// Panics if the key is not resident or the table is read-only.
    pub fn bump_clock(&mut self, key: Key) {
        assert!(
            !self.read_only,
            "clock bump against a read-only serving cache"
        );
        let e = self
            .entries
            .get_mut(&key)
            .expect("clock bump of a non-resident key");
        e.current_clock += 1;
    }

    /// Explicit `Het.Cache.Evict(key)`: removes the entry and returns its
    /// write-back payload. Used both for invalidation-resync and by tests.
    pub fn evict(&mut self, key: Key) -> Option<EvictedEntry> {
        let e = self.entries.remove(&key)?;
        self.policy.on_remove(key);
        het_trace::count!("cache", "evictions");
        if e.prefetched {
            self.record_prefetch_waste();
            self.pinned -= 1;
        }
        if e.dirty {
            self.stats.writebacks += 1;
            het_trace::count!("cache", "writebacks");
        }
        Some(EvictedEntry {
            pending_grad: e.pending_grad,
            current_clock: e.current_clock,
            dirty: e.dirty,
        })
    }

    /// Marks an invalidation in the stats (failed `CheckValid`).
    pub fn record_invalidation(&mut self) {
        self.stats.invalidations += 1;
        het_trace::count!("cache", "invalidations");
    }

    /// Capacity-pressure `Het.Cache.Evict()`: pops policy victims until
    /// the capacity-bounded region fits, returning their write-back
    /// payloads.
    ///
    /// Unconsumed prefetched entries are *pinned* in a staging region
    /// that does not count against capacity (BagPipe's separate
    /// prefetch buffer): evicting one would throw away a transfer whose
    /// read is at most `lookahead_depth` batches away, and charging it
    /// against capacity would let a deep lookahead window evict the
    /// resident hot set — pollution that grows with depth. The staging
    /// region is naturally bounded by the lookahead window: the planner
    /// only pins keys of batches at most `depth` ahead, and each pin is
    /// consumed at its target read (or removed by resync/crash). A
    /// pinned entry joins the capacity-bounded region at its first
    /// touch, when [`CacheTable::consume_prefetch`] clears the flag.
    pub fn evict_overflow(&mut self) -> Vec<(Key, EvictedEntry)> {
        let mut out = Vec::new();
        let mut repin: Vec<Key> = Vec::new();
        while self.entries.len() - self.pinned > self.capacity {
            let Some(victim) = self.policy.pop_victim() else {
                break;
            };
            if self.entries.get(&victim).is_some_and(|e| e.prefetched) {
                repin.push(victim);
                continue;
            }
            self.remove_overflow_victim(victim, &mut out);
        }
        // Re-admit popped pins in pop order, so the policy sees the
        // same deterministic sequence every run.
        for k in repin {
            self.policy.on_insert(k);
        }
        out
    }

    /// Shared bookkeeping for one overflow eviction (the key is already
    /// out of the policy).
    fn remove_overflow_victim(&mut self, victim: Key, out: &mut Vec<(Key, EvictedEntry)>) {
        if let Some(e) = self.entries.remove(&victim) {
            het_trace::count!("cache", "evictions");
            if e.prefetched {
                self.record_prefetch_waste();
                self.pinned -= 1;
            }
            if e.dirty {
                self.stats.writebacks += 1;
                het_trace::count!("cache", "writebacks");
            }
            self.stats.capacity_evictions += 1;
            het_trace::count!("cache", "capacity_evictions");
            out.push((
                victim,
                EvictedEntry {
                    pending_grad: e.pending_grad,
                    current_clock: e.current_clock,
                    dirty: e.dirty,
                },
            ));
        }
    }

    /// Drops every entry *without* write-back accounting — the cache's
    /// owning process died, so pending gradients are lost, not flushed.
    /// Returns what was lost so the caller can account the damage.
    /// Unlike [`CacheTable::evict`], lost dirty entries do not count as
    /// writebacks (no bytes ever moved).
    pub fn crash_clear(&mut self) -> Vec<(Key, EvictedEntry)> {
        let keys: Vec<Key> = self.entries.keys().copied().collect();
        let mut lost = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(e) = self.entries.remove(&k) {
                self.policy.on_remove(k);
                // Counter only (order-independent): this loop walks
                // HashMap key order, so per-key events would break
                // trace determinism.
                het_trace::count!("cache", "crash_drops");
                if e.prefetched {
                    self.record_prefetch_waste();
                    self.pinned -= 1;
                }
                lost.push((
                    k,
                    EvictedEntry {
                        pending_grad: e.pending_grad,
                        current_clock: e.current_clock,
                        dirty: e.dirty,
                    },
                ));
            }
        }
        lost
    }

    /// Drains every entry (end of training: flush all pending updates).
    /// Key-ordered: the drain feeds per-key server pushes, and the
    /// server's row store may be order-sensitive (a tiered store's
    /// demotion sequence follows the access stream), so walking raw
    /// HashMap order would leak its randomness into the run.
    pub fn drain_all(&mut self) -> Vec<(Key, EvictedEntry)> {
        let mut keys: Vec<Key> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|k| self.evict(k).map(|e| (k, e)))
            .collect()
    }

    /// Iterates over resident keys (unordered).
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cap: usize) -> CacheTable {
        CacheTable::new(cap, PolicyKind::Lru, 0.5)
    }

    #[test]
    fn install_get_round_trip() {
        let mut t = table(4);
        let _ = t.install(1, vec![1.0, 2.0], 5);
        assert!(t.find(1));
        assert_eq!(t.get(1).unwrap(), &[1.0, 2.0]);
        let e = t.peek(1).unwrap();
        assert_eq!(e.start_clock, 5);
        assert_eq!(e.current_clock, 5);
    }

    #[test]
    fn update_applies_locally_and_accumulates() {
        let mut t = table(4);
        let _ = t.install(1, vec![1.0, 1.0], 0);
        t.update(1, &[2.0, -2.0]);
        t.update(1, &[2.0, 0.0]);
        // Local view: 1 - 0.5*2 - 0.5*2 = -1 ; 1 + 0.5*2 = 2
        assert_eq!(t.get(1).unwrap(), &[-1.0, 2.0]);
        let e = t.peek(1).unwrap();
        assert_eq!(e.pending_grad, vec![4.0, -2.0]);
        assert!(e.dirty);
        assert_eq!(t.stats().dirtied, 1, "only the clean→dirty edge counts");
    }

    #[test]
    fn bump_clock_advances_only_current() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 3);
        t.bump_clock(1);
        t.bump_clock(1);
        let e = t.peek(1).unwrap();
        assert_eq!(e.current_clock, 5);
        assert_eq!(e.start_clock, 3);
    }

    #[test]
    fn evict_returns_writeback_payload() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 7);
        t.update(1, &[3.0]);
        t.bump_clock(1);
        let ev = t.evict(1).unwrap();
        assert_eq!(ev.pending_grad, vec![3.0]);
        assert_eq!(ev.current_clock, 8);
        assert!(ev.dirty);
        assert!(!t.find(1));
        assert_eq!(t.stats().writebacks, 1);
        assert_eq!(t.evict(1), None);
    }

    #[test]
    fn clean_evict_is_not_a_writeback() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        let ev = t.evict(1).unwrap();
        assert!(!ev.dirty);
        assert_eq!(t.stats().writebacks, 0);
    }

    #[test]
    fn overflow_eviction_respects_capacity_and_policy() {
        let mut t = table(2);
        let _ = t.install(1, vec![0.0], 0);
        let _ = t.install(2, vec![0.0], 0);
        let _ = t.get(1); // 2 is now LRU
        let _ = t.install(3, vec![0.0], 0);
        let evicted = t.evict_overflow();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert_eq!(t.len(), 2);
        assert!(t.find(1) && t.find(3));
        assert_eq!(t.stats().capacity_evictions, 1);
    }

    #[test]
    fn never_exceeds_capacity_after_overflow_eviction() {
        let mut t = table(8);
        for k in 0..100u64 {
            let _ = t.install(k, vec![0.0], 0);
            t.evict_overflow();
            assert!(t.len() <= 8);
        }
    }

    #[test]
    fn install_over_dirty_entry_returns_displaced_writeback() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        t.update(1, &[1.0]);
        t.bump_clock(1);
        let displaced = t
            .install(1, vec![9.0], 2)
            .expect("dirty entry must be displaced");
        assert!(displaced.dirty);
        assert_eq!(displaced.pending_grad, vec![1.0]);
        assert_eq!(displaced.current_clock, 1);
        assert_eq!(
            t.stats().writebacks,
            1,
            "displacement counts as a writeback"
        );
        // The fresh install fully replaced the entry.
        let e = t.peek(1).unwrap();
        assert_eq!(e.vector, vec![9.0]);
        assert_eq!(e.start_clock, 2);
        assert_eq!(e.current_clock, 2);
        assert!(!e.dirty);
        assert!(e.pending_grad.iter().all(|&g| g == 0.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn install_over_clean_entry_refreshes() {
        let mut t = table(4);
        assert!(t.install(1, vec![0.0], 0).is_none());
        assert!(t.install(1, vec![9.0], 4).is_none());
        let e = t.peek(1).unwrap();
        assert_eq!(e.vector, vec![9.0]);
        assert_eq!(e.start_clock, 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().writebacks, 0, "clean refresh is not a writeback");
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn update_missing_key_panics() {
        let mut t = table(4);
        t.update(1, &[1.0]);
    }

    #[test]
    fn crash_clear_loses_entries_without_writeback_accounting() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        let _ = t.install(2, vec![0.0], 0);
        t.update(2, &[1.0]);
        t.bump_clock(2);
        let lost = t.crash_clear();
        assert_eq!(lost.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.stats().writebacks, 0, "a crash moves no bytes");
        let dirty: Vec<_> = lost.iter().filter(|(_, e)| e.dirty).collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 2);
        assert_eq!(dirty[0].1.pending_grad, vec![1.0]);
        // The policy state was reset too: reinstalls behave like a cold cache.
        let _ = t.install(3, vec![0.0], 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drain_returns_everything() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        let _ = t.install(2, vec![0.0], 0);
        t.update(2, &[1.0]);
        let drained = t.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        let dirty: Vec<_> = drained.iter().filter(|(_, e)| e.dirty).collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 2);
    }

    #[test]
    fn stats_counters() {
        let mut t = table(4);
        t.record_hit();
        t.record_hit();
        t.record_miss();
        t.record_invalidation();
        assert_eq!(t.stats().hits, 2);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().invalidations, 1);
        assert!((t.stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        t.reset_stats();
        assert_eq!(t.stats().lookups(), 0);
    }

    #[test]
    fn prefetch_install_hit_clears_the_flag_once() {
        let mut t = table(4);
        let _ = t.install_prefetched(1, vec![1.0], 5);
        assert!(t.peek(1).unwrap().prefetched);
        assert_eq!(t.stats().prefetch_installs, 1);
        assert!(t.consume_prefetch(1), "first read redeems the prefetch");
        assert!(!t.consume_prefetch(1), "second read is a demand hit");
        assert_eq!(t.stats().prefetch_hits, 1);
        assert_eq!(t.stats().prefetch_wasted, 0);
    }

    #[test]
    fn unhit_prefetch_is_waste_on_every_exit_path() {
        // Eviction.
        let mut t = table(4);
        let _ = t.install_prefetched(1, vec![0.0], 0);
        let _ = t.evict(1);
        assert_eq!(t.stats().prefetch_wasted, 1);
        // Demand install over an unhit prefetch (resync).
        let _ = t.install_prefetched(2, vec![0.0], 0);
        let _ = t.install(2, vec![9.0], 3);
        assert!(
            !t.peek(2).unwrap().prefetched,
            "demand fetch clears the flag"
        );
        assert_eq!(t.stats().prefetch_wasted, 2);
        // Crash wipe.
        let _ = t.install_prefetched(3, vec![0.0], 0);
        let _ = t.crash_clear();
        assert_eq!(t.stats().prefetch_wasted, 3);
        // Ledger: installs == hits + waste.
        assert_eq!(t.stats().prefetch_installs, 3);
        assert_eq!(
            t.stats().prefetch_installs,
            t.stats().prefetch_hits + t.stats().prefetch_wasted
        );
    }

    #[test]
    fn consumed_prefetch_is_not_waste() {
        let mut t = table(4);
        let _ = t.install_prefetched(1, vec![0.0], 0);
        assert!(t.consume_prefetch(1));
        let _ = t.evict(1);
        assert_eq!(t.stats().prefetch_wasted, 0);
        assert_eq!(
            t.stats().prefetch_installs,
            t.stats().prefetch_hits + t.stats().prefetch_wasted
        );
    }

    #[test]
    fn pinned_prefetches_ride_out_overflow_in_the_staging_region() {
        let mut t = table(1);
        let _ = t.install_prefetched(1, vec![0.0], 0);
        let _ = t.install_prefetched(2, vec![0.0], 0);
        assert_eq!(t.pinned_len(), 2);
        // Unconsumed prefetches live outside the capacity bound: the
        // overflow pass never evicts them.
        assert!(t.evict_overflow().is_empty());
        assert_eq!(t.len(), 2);
        // First hits move them into the capacity-bounded region, where
        // ordinary eviction applies again.
        assert!(t.consume_prefetch(1));
        assert!(t.consume_prefetch(2));
        assert_eq!(t.pinned_len(), 0);
        let evicted = t.evict_overflow();
        assert_eq!(evicted.len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.stats().prefetch_wasted,
            0,
            "consumed prefetches are never waste"
        );
    }

    #[test]
    fn keys_iterates_residents() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        let _ = t.install(2, vec![0.0], 0);
        let mut ks: Vec<Key> = t.keys().collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CacheTable::new(0, PolicyKind::Lru, 0.1);
    }

    #[test]
    #[should_panic(expected = "read-only serving cache")]
    fn read_only_rejects_update() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        t.set_read_only(true);
        t.update(1, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "read-only serving cache")]
    fn read_only_rejects_clock_bump() {
        let mut t = table(4);
        let _ = t.install(1, vec![0.0], 0);
        t.set_read_only(true);
        t.bump_clock(1);
    }

    #[test]
    fn read_only_allows_the_read_protocol() {
        let mut t = table(2);
        t.set_read_only(true);
        assert!(t.read_only());
        // Fetch-landing, lookup, overflow eviction, and crash-clear are
        // all part of serving; only gradient state is off limits.
        let _ = t.install(1, vec![1.0], 0);
        let _ = t.install(2, vec![2.0], 0);
        let _ = t.install(3, vec![3.0], 0);
        assert_eq!(t.get(3).unwrap(), &[3.0]);
        let evicted = t.evict_overflow();
        assert_eq!(evicted.len(), 1);
        assert!(evicted.iter().all(|(_, e)| !e.dirty));
        let lost = t.crash_clear();
        assert!(lost.iter().all(|(_, e)| !e.dirty));
        assert!(t.is_empty());
    }
}
