//! Eviction policies: the policy zoo behind `CacheTable`.
//!
//! The paper (§4.3) finds LFU beats LRU on embedding workloads because
//! frequency reflects long-term popularity, but exact LFU's bookkeeping
//! is costly; its "light-weighted LFU" promotes an embedding to a
//! direct-access set once its frequency passes a threshold, after which
//! accesses bypass frequency maintenance entirely. Beyond the paper's
//! LRU/LFU pair this module adds the classic web-cache zoo — CLOCK
//! (cheap recency), SLRU (scan resistance), LFUDA (frequency with
//! aging, so a stale hot set cannot pin the cache forever), and GDSF
//! (size/cost awareness priced off the α-β wire model) — plus an
//! adaptive meta-policy that watches the access skew through a
//! SpaceSaving sketch and switches the live policy at deterministic
//! window boundaries. All are provided behind one trait so
//! `CacheTable` and the benches can swap them freely.

use crate::Key;
use het_data::SpaceSaving;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Default promotion threshold for the paper's light-weighted LFU
/// (§4.3). Lifted out of `LightLfuPolicy::new(16)` so configs and
/// sweeps can vary it; the default keeps golden fixtures byte-stable.
pub const DEFAULT_LIGHT_LFU_THRESHOLD: u64 = 16;

/// Default number of observations between adaptive skew evaluations.
pub const DEFAULT_ADAPTIVE_WINDOW: u64 = 256;

/// α term of the refetch-cost model handed to cost-aware policies:
/// fixed per-message bytes for one single-key fetch response (wire
/// header + key echo + clock). Mirrors
/// `het_simnet::wire::embedding_fetch_response_bytes` — a cross-crate
/// test in `het-core` pins the two together.
pub const FETCH_COST_ALPHA_BYTES: u64 = 64 + 8 + 8;

/// β term of the refetch-cost model: payload bytes per f32 element.
pub const FETCH_COST_BETA_BYTES: u64 = 4;

/// α-β refetch cost of one embedding row of dimension `dim`, in bytes:
/// what evicting the row will cost the network if it is read again.
pub const fn fetch_cost_bytes(dim: usize) -> u64 {
    FETCH_COST_ALPHA_BYTES + FETCH_COST_BETA_BYTES * dim as u64
}

/// Bytes one embedding row of dimension `dim` occupies in the cache
/// (the "size" in GDSF's cost/size ratio), floored at 1 so the ratio
/// is always defined.
pub const fn row_size_bytes(dim: usize) -> u64 {
    let b = FETCH_COST_BETA_BYTES * dim as u64;
    if b == 0 {
        1
    } else {
        b
    }
}

/// Which built-in policy to instantiate (used by configs and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Exact least-frequently-used (ties broken by recency).
    Lfu,
    /// The paper's §4.3 light-weighted LFU; keys whose frequency
    /// reaches `promote_threshold` move to the direct-access set.
    LightLfu {
        /// Promotion threshold (default [`DEFAULT_LIGHT_LFU_THRESHOLD`]).
        promote_threshold: u64,
    },
    /// CLOCK (second-chance): O(1) approximate LRU — an extension beyond
    /// the paper's LRU/LFU comparison.
    Clock,
    /// Segmented LRU: new keys enter a probationary segment and must be
    /// re-referenced to reach the protected segment, so a one-pass scan
    /// cannot flush the hot set.
    Slru,
    /// LFU with dynamic aging: victim priority seeds a global age term,
    /// so formerly-hot keys decay instead of pinning the cache forever.
    Lfuda,
    /// Greedy-Dual-Size-Frequency: priority is age + freq·cost/size,
    /// with cost priced off the α-β wire model — keys that are cheap to
    /// refetch are evicted first.
    Gdsf,
    /// Adaptive meta-policy: tracks access skew with a SpaceSaving
    /// sketch and switches between LRU / SLRU / LFUDA every `window`
    /// observations. Switch points are deterministic in the access
    /// stream and recorded as `cache.policy_switch` trace events.
    Adaptive {
        /// Observations between skew evaluations (default
        /// [`DEFAULT_ADAPTIVE_WINDOW`]). Smaller windows switch faster.
        window: u64,
    },
}

impl PolicyKind {
    /// The seven fixed (non-adaptive) policies, in leaderboard order.
    pub const FIXED: [PolicyKind; 7] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::LightLfu {
            promote_threshold: DEFAULT_LIGHT_LFU_THRESHOLD,
        },
        PolicyKind::Clock,
        PolicyKind::Slru,
        PolicyKind::Lfuda,
        PolicyKind::Gdsf,
    ];

    /// Every kind, the full zoo: the seven fixed policies plus the
    /// adaptive meta-policy at its default window.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::LightLfu {
            promote_threshold: DEFAULT_LIGHT_LFU_THRESHOLD,
        },
        PolicyKind::Clock,
        PolicyKind::Slru,
        PolicyKind::Lfuda,
        PolicyKind::Gdsf,
        PolicyKind::Adaptive {
            window: DEFAULT_ADAPTIVE_WINDOW,
        },
    ];

    /// Light-weighted LFU at the default promotion threshold.
    pub const fn light_lfu() -> Self {
        PolicyKind::LightLfu {
            promote_threshold: DEFAULT_LIGHT_LFU_THRESHOLD,
        }
    }

    /// The adaptive meta-policy at the default evaluation window.
    pub const fn adaptive() -> Self {
        PolicyKind::Adaptive {
            window: DEFAULT_ADAPTIVE_WINDOW,
        }
    }

    /// True for the adaptive meta-policy.
    pub const fn is_adaptive(self) -> bool {
        matches!(self, PolicyKind::Adaptive { .. })
    }

    /// Instantiates the policy for a table of the given capacity (SLRU
    /// sizes its protected segment from it; the adaptive meta-policy
    /// needs it to build its successors).
    pub fn build(self, capacity: usize) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Lfu => Box::new(LfuPolicy::new()),
            PolicyKind::LightLfu { promote_threshold } => {
                Box::new(LightLfuPolicy::new(promote_threshold))
            }
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
            PolicyKind::Slru => Box::new(SlruPolicy::from_capacity(capacity)),
            PolicyKind::Lfuda => Box::new(LfudaPolicy::new()),
            PolicyKind::Gdsf => Box::new(GdsfPolicy::new()),
            PolicyKind::Adaptive { window } => Box::new(AdaptivePolicy::new(capacity, window)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Lru => f.write_str("LRU"),
            PolicyKind::Lfu => f.write_str("LFU"),
            PolicyKind::LightLfu { .. } => f.write_str("LightLFU"),
            PolicyKind::Clock => f.write_str("CLOCK"),
            PolicyKind::Slru => f.write_str("SLRU"),
            PolicyKind::Lfuda => f.write_str("LFUDA"),
            PolicyKind::Gdsf => f.write_str("GDSF"),
            PolicyKind::Adaptive { .. } => f.write_str("Adaptive"),
        }
    }
}

/// Bookkeeping interface every eviction policy implements.
///
/// The table guarantees: `on_insert` is called once per resident key,
/// `on_access` only for resident keys, `on_remove` exactly once when a
/// key leaves, and `pop_victim` only when at least one key is resident.
///
/// `Sync` is required (every method takes `&mut self`, so it costs the
/// implementations nothing) so a policy can live inside the parameter
/// server's per-shard locks, which hand out `&Shard` to concurrent
/// readers.
pub trait CachePolicy: Send + Sync {
    /// A key became resident.
    fn on_insert(&mut self, key: Key);
    /// A key became resident, with its α-β refetch cost and in-cache
    /// size in bytes. Cost-aware policies (GDSF) override this; every
    /// other policy ignores the price and forwards to `on_insert`.
    fn on_insert_cost(&mut self, key: Key, cost_bytes: u64, size_bytes: u64) {
        let _ = (cost_bytes, size_bytes);
        self.on_insert(key);
    }
    /// A resident key was read or written.
    fn on_access(&mut self, key: Key);
    /// A resident key was removed explicitly (invalidation).
    fn on_remove(&mut self, key: Key);
    /// Chooses a victim, removes it from the policy state, and returns
    /// it. Returns `None` only when no key is tracked.
    fn pop_victim(&mut self) -> Option<Key>;
    /// Number of tracked keys.
    fn len(&self) -> usize;
    /// True when no key is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Number of online policy switches so far (adaptive only; fixed
    /// policies never switch).
    fn switch_count(&self) -> u64 {
        0
    }
}

/// Classic LRU via a logical tick per key.
pub struct LruPolicy {
    tick: u64,
    last_used: HashMap<Key, u64>,
    order: BTreeSet<(u64, Key)>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            tick: 0,
            last_used: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    fn touch(&mut self, key: Key) {
        self.tick += 1;
        if let Some(old) = self.last_used.insert(key, self.tick) {
            self.order.remove(&(old, key));
        }
        self.order.insert((self.tick, key));
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LruPolicy {
    fn on_insert(&mut self, key: Key) {
        self.touch(key);
    }

    fn on_access(&mut self, key: Key) {
        self.touch(key);
    }

    fn on_remove(&mut self, key: Key) {
        if let Some(t) = self.last_used.remove(&key) {
            self.order.remove(&(t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(tick, key) = self.order.iter().next()?;
        self.order.remove(&(tick, key));
        self.last_used.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.last_used.len()
    }
}

/// Exact LFU with LRU tie-breaking.
pub struct LfuPolicy {
    tick: u64,
    state: HashMap<Key, (u64, u64)>,  // key -> (freq, last tick)
    order: BTreeSet<(u64, u64, Key)>, // (freq, tick, key)
}

impl LfuPolicy {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        LfuPolicy {
            tick: 0,
            state: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    fn bump(&mut self, key: Key, is_insert: bool) {
        self.tick += 1;
        let entry = self.state.entry(key).or_insert((0, 0));
        if entry.1 != 0 || entry.0 != 0 {
            self.order.remove(&(entry.0, entry.1, key));
        }
        if !is_insert {
            entry.0 += 1;
        } else if entry.0 == 0 {
            entry.0 = 1;
        }
        entry.1 = self.tick;
        self.order.insert((entry.0, entry.1, key));
    }
}

impl Default for LfuPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LfuPolicy {
    fn on_insert(&mut self, key: Key) {
        self.bump(key, true);
    }

    fn on_access(&mut self, key: Key) {
        self.bump(key, false);
    }

    fn on_remove(&mut self, key: Key) {
        if let Some((f, t)) = self.state.remove(&key) {
            self.order.remove(&(f, t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(f, t, key) = self.order.iter().next()?;
        self.order.remove(&(f, t, key));
        self.state.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.state.len()
    }
}

/// The paper's light-weighted LFU (§4.3): exact frequency bookkeeping
/// only below a promotion threshold. Once a key's frequency reaches the
/// threshold it is *promoted* — moved to a direct-access set whose
/// members cost O(1) per access (a hash lookup, no ordered-structure
/// maintenance) and are never evicted while any unpromoted key remains.
pub struct LightLfuPolicy {
    threshold: u64,
    tick: u64,
    cold: HashMap<Key, (u64, u64)>,
    cold_order: BTreeSet<(u64, u64, Key)>,
    hot: HashMap<Key, u64>, // promoted keys -> insertion order (FIFO fallback)
    hot_fifo: VecDeque<Key>,
}

impl LightLfuPolicy {
    /// Creates the policy with the given promotion threshold.
    ///
    /// # Panics
    /// Panics if `threshold == 0` (everything would promote instantly).
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "promotion threshold must be positive");
        LightLfuPolicy {
            threshold,
            tick: 0,
            cold: HashMap::new(),
            cold_order: BTreeSet::new(),
            hot: HashMap::new(),
            hot_fifo: VecDeque::new(),
        }
    }

    /// Number of promoted (direct-access) keys.
    pub fn promoted_len(&self) -> usize {
        self.hot.len()
    }

    fn promote(&mut self, key: Key) {
        self.tick += 1;
        self.hot.insert(key, self.tick);
        self.hot_fifo.push_back(key);
    }
}

impl CachePolicy for LightLfuPolicy {
    fn on_insert(&mut self, key: Key) {
        self.tick += 1;
        self.cold.insert(key, (1, self.tick));
        self.cold_order.insert((1, self.tick, key));
    }

    fn on_access(&mut self, key: Key) {
        // Promoted keys: O(1), no maintenance — the paper's fast path.
        if self.hot.contains_key(&key) {
            return;
        }
        self.tick += 1;
        if let Some((f, t)) = self.cold.get(&key).copied() {
            self.cold_order.remove(&(f, t, key));
            let nf = f + 1;
            if nf >= self.threshold {
                self.cold.remove(&key);
                self.promote(key);
            } else {
                self.cold.insert(key, (nf, self.tick));
                self.cold_order.insert((nf, self.tick, key));
            }
        }
    }

    fn on_remove(&mut self, key: Key) {
        if let Some((f, t)) = self.cold.remove(&key) {
            self.cold_order.remove(&(f, t, key));
        } else if self.hot.remove(&key).is_some() {
            self.hot_fifo.retain(|&k| k != key);
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        if let Some(&(f, t, key)) = self.cold_order.iter().next() {
            self.cold_order.remove(&(f, t, key));
            self.cold.remove(&key);
            return Some(key);
        }
        // All keys promoted: fall back to FIFO among the hot set.
        while let Some(key) = self.hot_fifo.pop_front() {
            if self.hot.remove(&key).is_some() {
                return Some(key);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.cold.len() + self.hot.len()
    }
}

/// CLOCK / second-chance: keys sit on a circular list with a referenced
/// bit; the hand sweeps, clearing bits, and evicts the first key found
/// unreferenced. All operations are O(1) amortised — the cheapest
/// recency approximation, included as a systems-extension beyond the
/// paper's LRU/LFU pair.
pub struct ClockPolicy {
    ring: VecDeque<Key>,
    referenced: HashMap<Key, bool>,
}

impl ClockPolicy {
    /// Creates an empty CLOCK policy.
    pub fn new() -> Self {
        ClockPolicy {
            ring: VecDeque::new(),
            referenced: HashMap::new(),
        }
    }
}

impl Default for ClockPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for ClockPolicy {
    fn on_insert(&mut self, key: Key) {
        if self.referenced.insert(key, true).is_none() {
            self.ring.push_back(key);
        }
    }

    fn on_access(&mut self, key: Key) {
        if let Some(bit) = self.referenced.get_mut(&key) {
            *bit = true;
        }
    }

    fn on_remove(&mut self, key: Key) {
        if self.referenced.remove(&key).is_some() {
            self.ring.retain(|&k| k != key);
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        // Sweep: clear referenced bits until an unreferenced key is found.
        // Terminates within two revolutions.
        for _ in 0..self.ring.len() * 2 + 1 {
            let key = self.ring.pop_front()?;
            match self.referenced.get_mut(&key) {
                Some(bit) if *bit => {
                    *bit = false;
                    self.ring.push_back(key);
                }
                Some(_) => {
                    self.referenced.remove(&key);
                    return Some(key);
                }
                // Stale ring entry for a removed key: skip.
                None => continue,
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.referenced.len()
    }
}

/// Fraction of the table capacity given to SLRU's protected segment
/// (numerator/denominator, so the split is exact integer arithmetic).
const SLRU_PROTECTED_NUM: usize = 4;
const SLRU_PROTECTED_DEN: usize = 5;

/// Segmented LRU: two LRU segments. New keys enter *probationary*;
/// a hit on a probationary key promotes it to *protected* (capped at
/// ~80% of table capacity, demoting the protected LRU back to the
/// probationary MRU position when full). Victims come from the
/// probationary LRU end first, so a one-pass scan only ever churns the
/// probationary segment — the hot set in protected survives.
pub struct SlruPolicy {
    protected_cap: usize,
    tick: u64,
    probation: HashMap<Key, u64>,
    probation_order: BTreeSet<(u64, Key)>,
    protected: HashMap<Key, u64>,
    protected_order: BTreeSet<(u64, Key)>,
}

impl SlruPolicy {
    /// Creates the policy with an explicit protected-segment capacity.
    ///
    /// # Panics
    /// Panics if `protected_cap == 0`.
    pub fn new(protected_cap: usize) -> Self {
        assert!(protected_cap > 0, "protected capacity must be positive");
        SlruPolicy {
            protected_cap,
            tick: 0,
            probation: HashMap::new(),
            probation_order: BTreeSet::new(),
            protected: HashMap::new(),
            protected_order: BTreeSet::new(),
        }
    }

    /// Sizes the protected segment from the table capacity (80%).
    pub fn from_capacity(capacity: usize) -> Self {
        Self::new((capacity * SLRU_PROTECTED_NUM / SLRU_PROTECTED_DEN).max(1))
    }

    /// Number of keys currently in the protected segment.
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

impl CachePolicy for SlruPolicy {
    fn on_insert(&mut self, key: Key) {
        // Re-admission of an already-tracked key (the staging-region
        // repin path) is a touch of its current segment, not a demotion.
        if let Some(&t) = self.protected.get(&key) {
            self.protected_order.remove(&(t, key));
            let nt = self.next_tick();
            self.protected.insert(key, nt);
            self.protected_order.insert((nt, key));
            return;
        }
        if let Some(old) = self.probation.get(&key).copied() {
            self.probation_order.remove(&(old, key));
        }
        let t = self.next_tick();
        self.probation.insert(key, t);
        self.probation_order.insert((t, key));
    }

    fn on_access(&mut self, key: Key) {
        if let Some(&t) = self.protected.get(&key) {
            self.protected_order.remove(&(t, key));
            let nt = self.next_tick();
            self.protected.insert(key, nt);
            self.protected_order.insert((nt, key));
            return;
        }
        if let Some(t) = self.probation.remove(&key) {
            self.probation_order.remove(&(t, key));
            let nt = self.next_tick();
            self.protected.insert(key, nt);
            self.protected_order.insert((nt, key));
            // Overflowing protected demotes its LRU back to probation
            // as the most-recent probationary key (it keeps a fair
            // shot at re-promotion, but is no longer scan-proof).
            while self.protected.len() > self.protected_cap {
                let &(dt, dk) = self
                    .protected_order
                    .iter()
                    .next()
                    .expect("protected non-empty while over cap");
                self.protected_order.remove(&(dt, dk));
                self.protected.remove(&dk);
                let nt = self.next_tick();
                self.probation.insert(dk, nt);
                self.probation_order.insert((nt, dk));
            }
        }
    }

    fn on_remove(&mut self, key: Key) {
        if let Some(t) = self.probation.remove(&key) {
            self.probation_order.remove(&(t, key));
        } else if let Some(t) = self.protected.remove(&key) {
            self.protected_order.remove(&(t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        if let Some(&(t, key)) = self.probation_order.iter().next() {
            self.probation_order.remove(&(t, key));
            self.probation.remove(&key);
            return Some(key);
        }
        let &(t, key) = self.protected_order.iter().next()?;
        self.protected_order.remove(&(t, key));
        self.protected.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }
}

/// LFU with dynamic aging: each key's priority is `age + freq`, where
/// `age` is a global term set to the victim's priority at every
/// eviction. A formerly-hot key stops being touched, the age term
/// catches up, and it becomes evictable — fixing exact LFU's cache
/// pollution on drifting hot sets. Ties break by recency then key.
pub struct LfudaPolicy {
    age: u64,
    tick: u64,
    state: HashMap<Key, (u64, u64, u64)>, // key -> (freq, priority, last tick)
    order: BTreeSet<(u64, u64, Key)>,     // (priority, tick, key)
}

impl LfudaPolicy {
    /// Creates an empty LFUDA policy.
    pub fn new() -> Self {
        LfudaPolicy {
            age: 0,
            tick: 0,
            state: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// The current global age term (the last victim's priority).
    pub fn age(&self) -> u64 {
        self.age
    }
}

impl Default for LfudaPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LfudaPolicy {
    fn on_insert(&mut self, key: Key) {
        self.tick += 1;
        if let Some(&(f, p, t)) = self.state.get(&key) {
            // Repin of a tracked key: refresh recency, keep its score.
            self.order.remove(&(p, t, key));
            self.state.insert(key, (f, p, self.tick));
            self.order.insert((p, self.tick, key));
            return;
        }
        let pri = self.age + 1;
        self.state.insert(key, (1, pri, self.tick));
        self.order.insert((pri, self.tick, key));
    }

    fn on_access(&mut self, key: Key) {
        let Some(&(f, p, t)) = self.state.get(&key) else {
            return;
        };
        self.tick += 1;
        self.order.remove(&(p, t, key));
        let nf = f + 1;
        let pri = self.age + nf;
        self.state.insert(key, (nf, pri, self.tick));
        self.order.insert((pri, self.tick, key));
    }

    fn on_remove(&mut self, key: Key) {
        if let Some((_, p, t)) = self.state.remove(&key) {
            self.order.remove(&(p, t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(p, t, key) = self.order.iter().next()?;
        self.order.remove(&(p, t, key));
        self.state.remove(&key);
        // Dynamic aging: the victim's priority becomes the floor every
        // future insert/access builds on.
        self.age = p;
        Some(key)
    }

    fn len(&self) -> usize {
        self.state.len()
    }
}

/// Fixed-point scale for GDSF's cost/size ratio so priorities stay in
/// exact integer arithmetic (deterministic across platforms).
pub const GDSF_SCALE: u64 = 1024;

/// Greedy-Dual-Size-Frequency: priority is
/// `age + freq · cost · SCALE / size` with the same dynamic-aging term
/// as LFUDA. Cost is the α-β refetch price of the row (message header
/// plus payload), size its cache footprint, both in bytes — so small
/// per-key messages (high α share) are worth keeping relative to their
/// footprint, and expensive-to-refetch rows outrank cheap ones.
pub struct GdsfPolicy {
    age: u64,
    tick: u64,
    // Remembered (cost, size) from the latest priced insert, used when
    // a key is re-admitted without a price (the repin path). Tables
    // hold uniform-dimension rows, so this matches the real price.
    default_price: (u64, u64),
    state: HashMap<Key, GdsfEntry>,
    order: BTreeSet<(u64, u64, Key)>, // (priority, tick, key)
}

#[derive(Clone, Copy)]
struct GdsfEntry {
    freq: u64,
    cost: u64,
    size: u64,
    pri: u64,
    tick: u64,
}

impl GdsfPolicy {
    /// Creates an empty GDSF policy.
    pub fn new() -> Self {
        GdsfPolicy {
            age: 0,
            tick: 0,
            default_price: (1, 1),
            state: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// The current global age term (the last victim's priority).
    pub fn age(&self) -> u64 {
        self.age
    }

    fn priority(age: u64, freq: u64, cost: u64, size: u64) -> u64 {
        age + freq * cost * GDSF_SCALE / size
    }
}

impl Default for GdsfPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for GdsfPolicy {
    fn on_insert(&mut self, key: Key) {
        let (cost, size) = self.default_price;
        self.on_insert_cost(key, cost, size);
    }

    fn on_insert_cost(&mut self, key: Key, cost_bytes: u64, size_bytes: u64) {
        let cost = cost_bytes.max(1);
        let size = size_bytes.max(1);
        self.default_price = (cost, size);
        self.tick += 1;
        if let Some(&e) = self.state.get(&key) {
            // Repin of a tracked key: refresh recency, keep its score.
            self.order.remove(&(e.pri, e.tick, key));
            let ne = GdsfEntry {
                tick: self.tick,
                ..e
            };
            self.state.insert(key, ne);
            self.order.insert((ne.pri, ne.tick, key));
            return;
        }
        let pri = Self::priority(self.age, 1, cost, size);
        self.state.insert(
            key,
            GdsfEntry {
                freq: 1,
                cost,
                size,
                pri,
                tick: self.tick,
            },
        );
        self.order.insert((pri, self.tick, key));
    }

    fn on_access(&mut self, key: Key) {
        let Some(&e) = self.state.get(&key) else {
            return;
        };
        self.tick += 1;
        self.order.remove(&(e.pri, e.tick, key));
        let freq = e.freq + 1;
        let pri = Self::priority(self.age, freq, e.cost, e.size);
        let ne = GdsfEntry {
            freq,
            pri,
            tick: self.tick,
            ..e
        };
        self.state.insert(key, ne);
        self.order.insert((pri, self.tick, key));
    }

    fn on_remove(&mut self, key: Key) {
        if let Some(e) = self.state.remove(&key) {
            self.order.remove(&(e.pri, e.tick, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(p, t, key) = self.order.iter().next()?;
        self.order.remove(&(p, t, key));
        self.state.remove(&key);
        self.age = p;
        Some(key)
    }

    fn len(&self) -> usize {
        self.state.len()
    }
}

/// SpaceSaving sketch width used by the adaptive meta-policy.
const ADAPTIVE_SKETCH_KEYS: usize = 64;
/// How many sketch heads count as "the hot set" in the skew estimate.
const ADAPTIVE_HOT_TOP: usize = 8;
/// Hot-set mass fraction at or above which the stream is skewed enough
/// for frequency-with-aging (LFUDA) to win.
const ADAPTIVE_SKEW_HIGH: f64 = 0.5;
/// Hot-set mass fraction at or above which scan-resistant recency
/// (SLRU) is preferred; below it plain LRU is cheapest.
const ADAPTIVE_SKEW_LOW: f64 = 0.2;

/// Adaptive meta-policy: delegates to a live inner policy and watches
/// the access stream through a SpaceSaving sketch. Every `window`
/// observations (inserts + accesses) it estimates skew as the mass
/// fraction of the sketch's top heads and switches the inner policy —
/// high skew → LFUDA, moderate → SLRU, flat → LRU.
///
/// Determinism rule: evaluation points are a pure function of the
/// observation count, the sketch state is a pure function of the
/// observed key sequence, and on a switch the resident set is replayed
/// into the successor in recency order (oldest first) from the
/// meta-policy's own ordered bookkeeping — so same-seed runs switch at
/// identical points and stay byte-identical. Each switch emits a
/// `cache.policy_switch` instant event and bumps the
/// `cache.policy_switches` counter.
pub struct AdaptivePolicy {
    capacity: usize,
    window: u64,
    obs_in_window: u64,
    total_obs: u64,
    current: PolicyKind,
    inner: Box<dyn CachePolicy>,
    sketch: SpaceSaving,
    tick: u64,
    recency: HashMap<Key, u64>,
    order: BTreeSet<(u64, Key)>,
    switches: u64,
}

impl AdaptivePolicy {
    /// Creates the meta-policy for a table of the given capacity,
    /// evaluating skew every `window` observations. Starts on SLRU
    /// (the middle ground) until the first evaluation.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `window == 0`.
    pub fn new(capacity: usize, window: u64) -> Self {
        assert!(capacity > 0, "adaptive policy needs a positive capacity");
        assert!(window > 0, "adaptive evaluation window must be positive");
        let current = PolicyKind::Slru;
        AdaptivePolicy {
            capacity,
            window,
            obs_in_window: 0,
            total_obs: 0,
            current,
            inner: current.build(capacity),
            sketch: SpaceSaving::new(ADAPTIVE_SKETCH_KEYS),
            tick: 0,
            recency: HashMap::new(),
            order: BTreeSet::new(),
            switches: 0,
        }
    }

    /// The kind of the currently live inner policy.
    pub fn current_kind(&self) -> PolicyKind {
        self.current
    }

    /// Number of switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn touch(&mut self, key: Key) {
        self.tick += 1;
        if let Some(old) = self.recency.insert(key, self.tick) {
            self.order.remove(&(old, key));
        }
        self.order.insert((self.tick, key));
    }

    fn observe(&mut self, key: Key) {
        self.sketch.observe(key);
        self.obs_in_window += 1;
        self.total_obs += 1;
        if self.obs_in_window >= self.window {
            self.obs_in_window = 0;
            self.evaluate();
            // Fresh sketch per window so the estimate tracks drift
            // instead of the all-time distribution.
            self.sketch = SpaceSaving::new(ADAPTIVE_SKETCH_KEYS);
        }
    }

    fn evaluate(&mut self) {
        let total = self.sketch.total();
        if total == 0 {
            return;
        }
        let hot: u64 = self
            .sketch
            .top(ADAPTIVE_HOT_TOP)
            .iter()
            .map(|&(_, count)| count)
            .sum();
        let hot_frac = hot as f64 / total as f64;
        let next = if hot_frac >= ADAPTIVE_SKEW_HIGH {
            PolicyKind::Lfuda
        } else if hot_frac >= ADAPTIVE_SKEW_LOW {
            PolicyKind::Slru
        } else {
            PolicyKind::Lru
        };
        if next != self.current {
            self.switch_to(next, hot_frac);
        }
    }

    fn switch_to(&mut self, next: PolicyKind, hot_frac: f64) {
        let mut fresh = next.build(self.capacity);
        // Replay residents oldest-first so the successor's recency
        // order mirrors ours — deterministic for same-seed runs.
        for &(_, key) in &self.order {
            fresh.on_insert(key);
        }
        self.inner = fresh;
        self.switches += 1;
        het_trace::count!("cache", "policy_switches");
        het_trace::event!("cache", "policy_switch",
            "from" => self.current.to_string(),
            "to" => next.to_string(),
            "hot_frac" => hot_frac,
            "resident" => self.order.len(),
            "observations" => self.total_obs,
        );
        self.current = next;
    }
}

impl CachePolicy for AdaptivePolicy {
    fn on_insert(&mut self, key: Key) {
        self.touch(key);
        self.observe(key);
        self.inner.on_insert(key);
    }

    fn on_insert_cost(&mut self, key: Key, cost_bytes: u64, size_bytes: u64) {
        self.touch(key);
        self.observe(key);
        self.inner.on_insert_cost(key, cost_bytes, size_bytes);
    }

    fn on_access(&mut self, key: Key) {
        self.touch(key);
        self.observe(key);
        self.inner.on_access(key);
    }

    fn on_remove(&mut self, key: Key) {
        if let Some(t) = self.recency.remove(&key) {
            self.order.remove(&(t, key));
        }
        self.inner.on_remove(key);
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let key = self.inner.pop_victim()?;
        if let Some(t) = self.recency.remove(&key) {
            self.order.remove(&(t, key));
        }
        Some(key)
    }

    fn len(&self) -> usize {
        self.recency.len()
    }

    fn switch_count(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gives_second_chances() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        // First sweep clears every referenced bit and evicts the oldest.
        assert_eq!(p.pop_victim(), Some(1));
        // Re-reference 2: on the next sweep the hand skips it (clearing
        // its bit) and evicts 3 — the second chance in action.
        p.on_access(2);
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn clock_remove_and_len() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        assert_eq!(p.len(), 2);
        p.on_remove(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn clock_reinsert_is_idempotent() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        p.on_access(1); // order now: 2, 3, 1
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn lru_remove_unlinks() {
        let mut p = LruPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_remove(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        p.on_access(1);
        p.on_access(1);
        p.on_access(3);
        // freqs: 1->3, 2->1, 3->2
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn lfu_breaks_ties_by_recency() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        // Equal frequency; 1 is older.
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn lfu_remove_unlinks() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(2);
        p.on_remove(2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn light_lfu_promotes_hot_keys() {
        let mut p = LightLfuPolicy::new(3);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1); // freq 2
        p.on_access(1); // freq 3 -> promoted
        assert_eq!(p.promoted_len(), 1);
        // Victim must be the cold key even though 1 is "older".
        assert_eq!(p.pop_victim(), Some(2));
        // Only the promoted key remains: FIFO fallback yields it.
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn light_lfu_promoted_access_is_noop() {
        let mut p = LightLfuPolicy::new(2);
        p.on_insert(1);
        p.on_access(1); // promoted at freq 2
        let before = p.promoted_len();
        for _ in 0..100 {
            p.on_access(1);
        }
        assert_eq!(p.promoted_len(), before);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn light_lfu_remove_handles_both_sets() {
        let mut p = LightLfuPolicy::new(2);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1); // promote 1
        p.on_remove(1);
        p.on_remove(2);
        assert!(p.is_empty());
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn light_lfu_zero_threshold_rejected() {
        let _ = LightLfuPolicy::new(0);
    }

    #[test]
    fn kinds_build_working_policies() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build(8);
            p.on_insert(5);
            p.on_access(5);
            assert_eq!(p.len(), 1, "{kind}");
            assert_eq!(p.pop_victim(), Some(5), "{kind}");
        }
    }

    #[test]
    fn light_lfu_mimics_lfu_on_skewed_stream() {
        // Under a skewed access stream the light LFU should keep the hot
        // keys resident just like exact LFU (the paper's §4.3 claim of
        // "similar miss rate").
        let mut lfu = LfuPolicy::new();
        let mut light = LightLfuPolicy::new(4);
        for k in 0..4u64 {
            lfu.on_insert(k);
            light.on_insert(k);
        }
        // Key 0 hot, key 1 warm, keys 2,3 cold.
        for _ in 0..10 {
            lfu.on_access(0);
            light.on_access(0);
        }
        for _ in 0..3 {
            lfu.on_access(1);
            light.on_access(1);
        }
        let v1 = lfu.pop_victim().unwrap();
        let v2 = light.pop_victim().unwrap();
        assert!(v1 == 2 || v1 == 3);
        assert!(v2 == 2 || v2 == 3);
    }

    #[test]
    fn default_light_lfu_threshold_is_sixteen() {
        // The golden fixtures were recorded at threshold 16; the
        // lifted default must not drift.
        assert_eq!(DEFAULT_LIGHT_LFU_THRESHOLD, 16);
        assert_eq!(
            PolicyKind::light_lfu(),
            PolicyKind::LightLfu {
                promote_threshold: 16
            }
        );
    }

    #[test]
    fn slru_survives_a_scan() {
        let mut p = SlruPolicy::new(4);
        // Build a hot set that has been re-referenced (protected).
        for k in 0..3u64 {
            p.on_insert(k);
            p.on_access(k);
        }
        assert_eq!(p.protected_len(), 3);
        // A one-pass scan: inserted once, never re-referenced.
        for k in 100..110u64 {
            p.on_insert(k);
        }
        // Every victim is a scan key until the probationary segment is
        // exhausted — the hot set is untouchable.
        for _ in 0..10 {
            let v = p.pop_victim().unwrap();
            assert!(v >= 100, "scan key evicted before hot set, got {v}");
        }
        // Only now does SLRU fall back to the protected LRU.
        assert_eq!(p.pop_victim(), Some(0));
    }

    #[test]
    fn slru_demotes_protected_overflow() {
        let mut p = SlruPolicy::new(2);
        for k in 0..3u64 {
            p.on_insert(k);
        }
        p.on_access(0);
        p.on_access(1);
        p.on_access(2); // protected over cap: demotes 0 back to probation
        assert_eq!(p.protected_len(), 2);
        // 0 is now the probationary victim.
        assert_eq!(p.pop_victim(), Some(0));
    }

    #[test]
    fn slru_remove_unlinks_both_segments() {
        let mut p = SlruPolicy::new(4);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1); // 1 protected, 2 probationary
        p.on_remove(1);
        p.on_remove(2);
        assert!(p.is_empty());
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn lfuda_ages_out_formerly_hot_keys() {
        let mut p = LfudaPolicy::new();
        p.on_insert(1);
        for _ in 0..9 {
            p.on_access(1); // freq 10, pri 10
        }
        // Churn cold keys; each eviction raises the global age floor.
        // Exact LFU would keep the freq-10 key forever against freq-1
        // churn; LFUDA evicts it once the floor catches its frozen
        // priority 10.
        let mut aged_out_at = None;
        let mut k = 10u64;
        while aged_out_at.is_none() && k < 1000 {
            p.on_insert(k);
            if p.len() > 3 && p.pop_victim() == Some(1) {
                aged_out_at = Some(p.age());
            }
            k += 1;
        }
        let age = aged_out_at.expect("stale hot key never aged out");
        assert!(age >= 10, "evicted before the floor caught up, age {age}");
    }

    #[test]
    fn lfuda_breaks_priority_ties_by_recency() {
        let mut p = LfudaPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn gdsf_prefers_evicting_cheap_rows() {
        let mut p = GdsfPolicy::new();
        // Same frequency, same size, different refetch cost.
        p.on_insert_cost(1, 1000, 64);
        p.on_insert_cost(2, 100, 64);
        assert_eq!(p.pop_victim(), Some(2), "cheap-to-refetch goes first");
        // Frequency outweighs a moderate cost edge.
        let mut p = GdsfPolicy::new();
        p.on_insert_cost(1, 100, 64);
        p.on_insert_cost(2, 150, 64);
        p.on_access(1);
        p.on_access(1);
        assert_eq!(p.pop_victim(), Some(2));
    }

    #[test]
    fn gdsf_aging_mirrors_lfuda() {
        let mut p = GdsfPolicy::new();
        // Uniform cost/size ratio of 1: each access step is GDSF_SCALE.
        p.on_insert_cost(1, 100, 100);
        for _ in 0..9 {
            p.on_access(1); // pri = 10·SCALE, then frozen
        }
        // Same dynamic-aging property as LFUDA: the stale hot key is
        // evicted once the floor catches its frozen priority 10·SCALE.
        let mut aged_out_at = None;
        let mut k = 10u64;
        while aged_out_at.is_none() && k < 1000 {
            p.on_insert_cost(k, 100, 100);
            if p.len() > 3 && p.pop_victim() == Some(1) {
                aged_out_at = Some(p.age());
            }
            k += 1;
        }
        let age = aged_out_at.expect("stale hot key never aged out");
        assert!(age >= 10 * GDSF_SCALE, "evicted early, age {age}");
    }

    #[test]
    fn cost_model_is_alpha_beta() {
        assert_eq!(fetch_cost_bytes(0), FETCH_COST_ALPHA_BYTES);
        assert_eq!(
            fetch_cost_bytes(128),
            FETCH_COST_ALPHA_BYTES + 128 * FETCH_COST_BETA_BYTES
        );
        assert_eq!(row_size_bytes(0), 1, "size is floored at one byte");
        assert_eq!(row_size_bytes(16), 64);
    }

    #[test]
    fn adaptive_switches_to_lfuda_under_skew() {
        let mut p = AdaptivePolicy::new(64, 32);
        assert_eq!(p.current_kind(), PolicyKind::Slru);
        for k in 0..8u64 {
            p.on_insert(k);
        }
        // Hammer two keys: the window's hot mass is concentrated.
        for i in 0..200u64 {
            p.on_access(i % 2);
        }
        assert_eq!(p.current_kind(), PolicyKind::Lfuda);
        assert!(p.switches() >= 1);
        assert_eq!(p.switch_count(), p.switches());
    }

    #[test]
    fn adaptive_switches_to_lru_on_flat_stream() {
        let mut p = AdaptivePolicy::new(64, 64);
        // Uniform sweep over many more keys than sketch heads: the
        // top-8 mass fraction is tiny.
        for i in 0..2048u64 {
            p.on_insert(i % 1024);
        }
        assert_eq!(p.current_kind(), PolicyKind::Lru);
    }

    #[test]
    fn adaptive_preserves_residents_across_a_switch() {
        let mut p = AdaptivePolicy::new(64, 16);
        for k in 0..10u64 {
            p.on_insert(k);
        }
        // Force a switch by skewing the stream.
        for _ in 0..32 {
            p.on_access(0);
        }
        assert!(p.switches() >= 1, "stream should have forced a switch");
        assert_eq!(p.len(), 10, "residents must survive the switch");
        // Every resident is still evictable exactly once.
        let mut victims = BTreeSet::new();
        while let Some(v) = p.pop_victim() {
            assert!(victims.insert(v), "duplicate victim {v}");
        }
        assert_eq!(victims.len(), 10);
    }

    #[test]
    fn adaptive_switch_points_are_deterministic() {
        let run = || {
            let mut p = AdaptivePolicy::new(32, 16);
            let mut victims = Vec::new();
            for i in 0..400u64 {
                let k = (i * i + 7) % 97;
                if i % 5 == 0 {
                    p.on_insert(k);
                } else {
                    p.on_access(k % 13);
                }
                if p.len() > 32 {
                    victims.push(p.pop_victim().unwrap());
                }
            }
            (victims, p.switches())
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
        assert!(s1 >= 1, "trace should exercise at least one switch");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn adaptive_zero_window_rejected() {
        let _ = AdaptivePolicy::new(8, 0);
    }
}
