//! Eviction policies: LRU, exact LFU, and the paper's light-weighted LFU.
//!
//! The paper (§4.3) finds LFU beats LRU on embedding workloads because
//! frequency reflects long-term popularity, but exact LFU's bookkeeping
//! is costly; its "light-weighted LFU" promotes an embedding to a
//! direct-access set once its frequency passes a threshold, after which
//! accesses bypass frequency maintenance entirely. All three are provided
//! behind one trait so `CacheTable` and the Fig. 8 bench can swap them.

use crate::Key;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Which built-in policy to instantiate (used by configs and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Exact least-frequently-used (ties broken by recency).
    Lfu,
    /// The paper's §4.3 light-weighted LFU.
    LightLfu,
    /// CLOCK (second-chance): O(1) approximate LRU — an extension beyond
    /// the paper's LRU/LFU comparison.
    Clock,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Lfu => Box::new(LfuPolicy::new()),
            PolicyKind::LightLfu => Box::new(LightLfuPolicy::new(16)),
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Lru => f.write_str("LRU"),
            PolicyKind::Lfu => f.write_str("LFU"),
            PolicyKind::LightLfu => f.write_str("LightLFU"),
            PolicyKind::Clock => f.write_str("CLOCK"),
        }
    }
}

/// Bookkeeping interface every eviction policy implements.
///
/// The table guarantees: `on_insert` is called once per resident key,
/// `on_access` only for resident keys, `on_remove` exactly once when a
/// key leaves, and `pop_victim` only when at least one key is resident.
pub trait CachePolicy: Send {
    /// A key became resident.
    fn on_insert(&mut self, key: Key);
    /// A resident key was read or written.
    fn on_access(&mut self, key: Key);
    /// A resident key was removed explicitly (invalidation).
    fn on_remove(&mut self, key: Key);
    /// Chooses a victim, removes it from the policy state, and returns
    /// it. Returns `None` only when no key is tracked.
    fn pop_victim(&mut self) -> Option<Key>;
    /// Number of tracked keys.
    fn len(&self) -> usize;
    /// True when no key is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Classic LRU via a logical tick per key.
pub struct LruPolicy {
    tick: u64,
    last_used: HashMap<Key, u64>,
    order: BTreeSet<(u64, Key)>,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            tick: 0,
            last_used: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    fn touch(&mut self, key: Key) {
        self.tick += 1;
        if let Some(old) = self.last_used.insert(key, self.tick) {
            self.order.remove(&(old, key));
        }
        self.order.insert((self.tick, key));
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LruPolicy {
    fn on_insert(&mut self, key: Key) {
        self.touch(key);
    }

    fn on_access(&mut self, key: Key) {
        self.touch(key);
    }

    fn on_remove(&mut self, key: Key) {
        if let Some(t) = self.last_used.remove(&key) {
            self.order.remove(&(t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(tick, key) = self.order.iter().next()?;
        self.order.remove(&(tick, key));
        self.last_used.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.last_used.len()
    }
}

/// Exact LFU with LRU tie-breaking.
pub struct LfuPolicy {
    tick: u64,
    state: HashMap<Key, (u64, u64)>,  // key -> (freq, last tick)
    order: BTreeSet<(u64, u64, Key)>, // (freq, tick, key)
}

impl LfuPolicy {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        LfuPolicy {
            tick: 0,
            state: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    fn bump(&mut self, key: Key, is_insert: bool) {
        self.tick += 1;
        let entry = self.state.entry(key).or_insert((0, 0));
        if entry.1 != 0 || entry.0 != 0 {
            self.order.remove(&(entry.0, entry.1, key));
        }
        if !is_insert {
            entry.0 += 1;
        } else if entry.0 == 0 {
            entry.0 = 1;
        }
        entry.1 = self.tick;
        self.order.insert((entry.0, entry.1, key));
    }
}

impl Default for LfuPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LfuPolicy {
    fn on_insert(&mut self, key: Key) {
        self.bump(key, true);
    }

    fn on_access(&mut self, key: Key) {
        self.bump(key, false);
    }

    fn on_remove(&mut self, key: Key) {
        if let Some((f, t)) = self.state.remove(&key) {
            self.order.remove(&(f, t, key));
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        let &(f, t, key) = self.order.iter().next()?;
        self.order.remove(&(f, t, key));
        self.state.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.state.len()
    }
}

/// The paper's light-weighted LFU (§4.3): exact frequency bookkeeping
/// only below a promotion threshold. Once a key's frequency reaches the
/// threshold it is *promoted* — moved to a direct-access set whose
/// members cost O(1) per access (a hash lookup, no ordered-structure
/// maintenance) and are never evicted while any unpromoted key remains.
pub struct LightLfuPolicy {
    threshold: u64,
    tick: u64,
    cold: HashMap<Key, (u64, u64)>,
    cold_order: BTreeSet<(u64, u64, Key)>,
    hot: HashMap<Key, u64>, // promoted keys -> insertion order (FIFO fallback)
    hot_fifo: VecDeque<Key>,
}

impl LightLfuPolicy {
    /// Creates the policy with the given promotion threshold.
    ///
    /// # Panics
    /// Panics if `threshold == 0` (everything would promote instantly).
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "promotion threshold must be positive");
        LightLfuPolicy {
            threshold,
            tick: 0,
            cold: HashMap::new(),
            cold_order: BTreeSet::new(),
            hot: HashMap::new(),
            hot_fifo: VecDeque::new(),
        }
    }

    /// Number of promoted (direct-access) keys.
    pub fn promoted_len(&self) -> usize {
        self.hot.len()
    }

    fn promote(&mut self, key: Key) {
        self.tick += 1;
        self.hot.insert(key, self.tick);
        self.hot_fifo.push_back(key);
    }
}

impl CachePolicy for LightLfuPolicy {
    fn on_insert(&mut self, key: Key) {
        self.tick += 1;
        self.cold.insert(key, (1, self.tick));
        self.cold_order.insert((1, self.tick, key));
    }

    fn on_access(&mut self, key: Key) {
        // Promoted keys: O(1), no maintenance — the paper's fast path.
        if self.hot.contains_key(&key) {
            return;
        }
        self.tick += 1;
        if let Some((f, t)) = self.cold.get(&key).copied() {
            self.cold_order.remove(&(f, t, key));
            let nf = f + 1;
            if nf >= self.threshold {
                self.cold.remove(&key);
                self.promote(key);
            } else {
                self.cold.insert(key, (nf, self.tick));
                self.cold_order.insert((nf, self.tick, key));
            }
        }
    }

    fn on_remove(&mut self, key: Key) {
        if let Some((f, t)) = self.cold.remove(&key) {
            self.cold_order.remove(&(f, t, key));
        } else if self.hot.remove(&key).is_some() {
            self.hot_fifo.retain(|&k| k != key);
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        if let Some(&(f, t, key)) = self.cold_order.iter().next() {
            self.cold_order.remove(&(f, t, key));
            self.cold.remove(&key);
            return Some(key);
        }
        // All keys promoted: fall back to FIFO among the hot set.
        while let Some(key) = self.hot_fifo.pop_front() {
            if self.hot.remove(&key).is_some() {
                return Some(key);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.cold.len() + self.hot.len()
    }
}

/// CLOCK / second-chance: keys sit on a circular list with a referenced
/// bit; the hand sweeps, clearing bits, and evicts the first key found
/// unreferenced. All operations are O(1) amortised — the cheapest
/// recency approximation, included as a systems-extension beyond the
/// paper's LRU/LFU pair.
pub struct ClockPolicy {
    ring: VecDeque<Key>,
    referenced: HashMap<Key, bool>,
}

impl ClockPolicy {
    /// Creates an empty CLOCK policy.
    pub fn new() -> Self {
        ClockPolicy {
            ring: VecDeque::new(),
            referenced: HashMap::new(),
        }
    }
}

impl Default for ClockPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for ClockPolicy {
    fn on_insert(&mut self, key: Key) {
        if self.referenced.insert(key, true).is_none() {
            self.ring.push_back(key);
        }
    }

    fn on_access(&mut self, key: Key) {
        if let Some(bit) = self.referenced.get_mut(&key) {
            *bit = true;
        }
    }

    fn on_remove(&mut self, key: Key) {
        if self.referenced.remove(&key).is_some() {
            self.ring.retain(|&k| k != key);
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        // Sweep: clear referenced bits until an unreferenced key is found.
        // Terminates within two revolutions.
        for _ in 0..self.ring.len() * 2 + 1 {
            let key = self.ring.pop_front()?;
            match self.referenced.get_mut(&key) {
                Some(bit) if *bit => {
                    *bit = false;
                    self.ring.push_back(key);
                }
                Some(_) => {
                    self.referenced.remove(&key);
                    return Some(key);
                }
                // Stale ring entry for a removed key: skip.
                None => continue,
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.referenced.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gives_second_chances() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        // First sweep clears every referenced bit and evicts the oldest.
        assert_eq!(p.pop_victim(), Some(1));
        // Re-reference 2: on the next sweep the hand skips it (clearing
        // its bit) and evicts 3 — the second chance in action.
        p.on_access(2);
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn clock_remove_and_len() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        assert_eq!(p.len(), 2);
        p.on_remove(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn clock_reinsert_is_idempotent() {
        let mut p = ClockPolicy::new();
        p.on_insert(1);
        p.on_insert(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        p.on_access(1); // order now: 2, 3, 1
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn lru_remove_unlinks() {
        let mut p = LruPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_remove(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_insert(3);
        p.on_access(1);
        p.on_access(1);
        p.on_access(3);
        // freqs: 1->3, 2->1, 3->2
        assert_eq!(p.pop_victim(), Some(2));
        assert_eq!(p.pop_victim(), Some(3));
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn lfu_breaks_ties_by_recency() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        // Equal frequency; 1 is older.
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn lfu_remove_unlinks() {
        let mut p = LfuPolicy::new();
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(2);
        p.on_remove(2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pop_victim(), Some(1));
    }

    #[test]
    fn light_lfu_promotes_hot_keys() {
        let mut p = LightLfuPolicy::new(3);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1); // freq 2
        p.on_access(1); // freq 3 -> promoted
        assert_eq!(p.promoted_len(), 1);
        // Victim must be the cold key even though 1 is "older".
        assert_eq!(p.pop_victim(), Some(2));
        // Only the promoted key remains: FIFO fallback yields it.
        assert_eq!(p.pop_victim(), Some(1));
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    fn light_lfu_promoted_access_is_noop() {
        let mut p = LightLfuPolicy::new(2);
        p.on_insert(1);
        p.on_access(1); // promoted at freq 2
        let before = p.promoted_len();
        for _ in 0..100 {
            p.on_access(1);
        }
        assert_eq!(p.promoted_len(), before);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn light_lfu_remove_handles_both_sets() {
        let mut p = LightLfuPolicy::new(2);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1); // promote 1
        p.on_remove(1);
        p.on_remove(2);
        assert!(p.is_empty());
        assert_eq!(p.pop_victim(), None);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn light_lfu_zero_threshold_rejected() {
        let _ = LightLfuPolicy::new(0);
    }

    #[test]
    fn kinds_build_working_policies() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::LightLfu,
            PolicyKind::Clock,
        ] {
            let mut p = kind.build();
            p.on_insert(5);
            p.on_access(5);
            assert_eq!(p.len(), 1, "{kind}");
            assert_eq!(p.pop_victim(), Some(5), "{kind}");
        }
    }

    #[test]
    fn light_lfu_mimics_lfu_on_skewed_stream() {
        // Under a skewed access stream the light LFU should keep the hot
        // keys resident just like exact LFU (the paper's §4.3 claim of
        // "similar miss rate").
        let mut lfu = LfuPolicy::new();
        let mut light = LightLfuPolicy::new(4);
        for k in 0..4u64 {
            lfu.on_insert(k);
            light.on_insert(k);
        }
        // Key 0 hot, key 1 warm, keys 2,3 cold.
        for _ in 0..10 {
            lfu.on_access(0);
            light.on_access(0);
        }
        for _ in 0..3 {
            lfu.on_access(1);
            light.on_access(1);
        }
        let v1 = lfu.pop_victim().unwrap();
        let v2 = light.pop_victim().unwrap();
        assert!(v1 == 2 || v1 == 3);
        assert!(v2 == 2 || v2 == 3);
    }
}
