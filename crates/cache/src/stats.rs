//! Cache hit/miss accounting — the quantity Fig. 8 plots.

/// Counters maintained by [`crate::CacheTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (possibly after validation).
    pub hits: u64,
    /// Lookups that required a server fetch.
    pub misses: u64,
    /// Entries evicted to make room (capacity pressure).
    pub capacity_evictions: u64,
    /// Entries invalidated by a failed `CheckValid` (resynchronised).
    pub invalidations: u64,
    /// Dirty write-backs pushed toward the server.
    pub writebacks: u64,
    /// Clean→dirty transitions: entries that started accumulating a
    /// pending gradient. Every dirtied entry must later surface as a
    /// writeback or an accounted crash loss (gradient conservation).
    pub dirtied: u64,
    /// Entries installed by the lookahead prefetcher (as opposed to
    /// demand fetches). Every prefetch install must later surface as a
    /// prefetch hit or accounted waste (the prefetch ledger).
    pub prefetch_installs: u64,
    /// Hits whose entry was resident because of a prefetch and had not
    /// been demand-read since. A strict subset of `hits`.
    pub prefetch_hits: u64,
    /// Prefetched entries that left the cache (eviction, displacement,
    /// crash wipe, final drain) without ever serving a read.
    pub prefetch_wasted: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in [0,1]; 0 when nothing was looked up.
    pub fn miss_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hit rate in [0,1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.capacity_evictions += other.capacity_evictions;
        self.invalidations += other.invalidations;
        self.writebacks += other.writebacks;
        self.dirtied += other.dirtied;
        self.prefetch_installs += other.prefetch_installs;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_wasted += other.prefetch_wasted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.lookups(), 4);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            capacity_evictions: 3,
            invalidations: 4,
            writebacks: 5,
            dirtied: 6,
            prefetch_installs: 7,
            prefetch_hits: 8,
            prefetch_wasted: 9,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.capacity_evictions, 6);
        assert_eq!(a.invalidations, 8);
        assert_eq!(a.writebacks, 10);
        assert_eq!(a.dirtied, 12);
        assert_eq!(a.prefetch_installs, 14);
        assert_eq!(a.prefetch_hits, 16);
        assert_eq!(a.prefetch_wasted, 18);
    }
}
