//! Cache entries and what eviction returns.

/// One cached embedding with its two per-embedding clocks.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The locally visible embedding vector. Local updates are applied to
    /// it immediately, which is what gives the worker read-my-updates.
    pub vector: Vec<f32>,
    /// Accumulated raw gradients not yet pushed to the server
    /// (the "stale write" buffer). Empty ⇔ clean entry.
    pub pending_grad: Vec<f32>,
    /// True if `pending_grad` holds at least one accumulated update.
    pub dirty: bool,
    /// Start clock `c_s`: global clock observed at the last fetch.
    pub start_clock: u64,
    /// Current clock `c_c`: `c_s` plus this worker's local updates.
    pub current_clock: u64,
    /// True while the entry is resident because of a lookahead prefetch
    /// and has not yet served a read. Cleared by the first hit
    /// ([`crate::CacheTable::consume_prefetch`]); an entry that leaves
    /// the cache with the flag still set counts as prefetch waste.
    pub prefetched: bool,
}

impl CacheEntry {
    /// A freshly fetched entry: both clocks equal the server's global
    /// clock (paper `Het.Cache.Fetch`).
    pub fn fetched(vector: Vec<f32>, global_clock: u64) -> Self {
        let dim = vector.len();
        CacheEntry {
            vector,
            pending_grad: vec![0.0; dim],
            dirty: false,
            start_clock: global_clock,
            current_clock: global_clock,
            prefetched: false,
        }
    }

    /// Locally checkable validity: condition (1) of `CheckValid`,
    /// `c_c ≤ c_s + s`.
    pub fn within_write_bound(&self, staleness: u64) -> bool {
        self.current_clock <= self.start_clock.saturating_add(staleness)
    }

    /// Server-clock validity: condition (2) of `CheckValid`,
    /// `c_g ≤ c_c + s`, given a freshly queried global clock.
    pub fn within_read_bound(&self, global_clock: u64, staleness: u64) -> bool {
        global_clock <= self.current_clock.saturating_add(staleness)
    }
}

/// What `Evict` hands back to be pushed to the server: the accumulated
/// gradient and the local clock `c_c` (the server will take
/// `c_g = max(c_g, c_c)`).
#[derive(Clone, Debug, PartialEq)]
pub struct EvictedEntry {
    /// The accumulated (summed) raw gradient.
    pub pending_grad: Vec<f32>,
    /// The entry's local clock at eviction.
    pub current_clock: u64,
    /// True if there was anything to push.
    pub dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetched_entry_is_clean_with_equal_clocks() {
        let e = CacheEntry::fetched(vec![1.0, 2.0], 7);
        assert_eq!(e.start_clock, 7);
        assert_eq!(e.current_clock, 7);
        assert!(!e.dirty);
        assert_eq!(e.pending_grad, vec![0.0, 0.0]);
    }

    #[test]
    fn write_bound_condition() {
        let mut e = CacheEntry::fetched(vec![0.0], 10);
        assert!(e.within_write_bound(0), "fresh entry valid even at s=0");
        e.current_clock = 13;
        assert!(e.within_write_bound(3));
        assert!(!e.within_write_bound(2));
    }

    #[test]
    fn read_bound_condition() {
        let e = CacheEntry::fetched(vec![0.0], 10);
        assert!(e.within_read_bound(10, 0));
        assert!(e.within_read_bound(12, 2));
        assert!(!e.within_read_bound(13, 2));
    }

    #[test]
    fn bounds_saturate_at_u64_max() {
        let mut e = CacheEntry::fetched(vec![0.0], u64::MAX - 1);
        e.current_clock = u64::MAX;
        assert!(e.within_write_bound(u64::MAX));
        assert!(e.within_read_bound(u64::MAX, u64::MAX));
    }
}
