//! The HET cache embedding table (paper §3.1–§3.2, §4.3).
//!
//! Each worker holds a bounded cache of hot embeddings. A cached
//! embedding `x_k^i` carries two Lamport clocks:
//!
//! * `c_s` — the *start clock*: the global clock observed when the entry
//!   was last fetched from the server;
//! * `c_c` — the *current clock*: incremented by one every time this
//!   worker updates the embedding locally.
//!
//! Writes are **stale**: `update` applies the gradient to the local copy
//! immediately (read-my-updates) while accumulating the raw gradient in
//! a pending buffer that only reaches the server when the entry is
//! evicted or invalidated — this write-back behaviour is the half of the
//! paper's consistency model that distinguishes it from SSP.
//!
//! Validity of a cached entry (paper `Het.Cache.CheckValid`) is the
//! conjunction of two clock bounds with staleness threshold `s`:
//! `c_c ≤ c_s + s` (locally checkable) and `c_g ≤ c_c + s` (requires a
//! clock-only round trip, which `het-core` charges to the network).
//!
//! Eviction is pluggable — a zoo of policies behind one trait: the
//! paper's pair ([`policy::LruPolicy`], [`policy::LfuPolicy`]) and its
//! §4.3 [`policy::LightLfuPolicy`] that promotes hot keys to a
//! direct-access set, plus [`policy::ClockPolicy`] (cheap recency),
//! [`policy::SlruPolicy`] (scan resistance), [`policy::LfudaPolicy`]
//! (frequency aging), [`policy::GdsfPolicy`] (α-β cost awareness), and
//! the sketch-driven [`policy::AdaptivePolicy`] that switches between
//! them online at deterministic points.

#![warn(missing_docs)]

pub mod entry;
pub mod policy;
pub mod stats;
pub mod table;

pub use entry::{CacheEntry, EvictedEntry};
pub use policy::{
    fetch_cost_bytes, row_size_bytes, AdaptivePolicy, CachePolicy, ClockPolicy, GdsfPolicy,
    LfuPolicy, LfudaPolicy, LightLfuPolicy, LruPolicy, PolicyKind, SlruPolicy,
    DEFAULT_ADAPTIVE_WINDOW, DEFAULT_LIGHT_LFU_THRESHOLD, FETCH_COST_ALPHA_BYTES,
    FETCH_COST_BETA_BYTES, GDSF_SCALE,
};
pub use stats::CacheStats;
pub use table::CacheTable;

/// An embedding key (feature ID).
pub type Key = u64;
