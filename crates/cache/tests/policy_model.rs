//! Model-based property tests for the eviction-policy zoo.
//!
//! Every O(1) policy in `het_cache::policy` (BTreeSet-ordered, tick
//! bookkeeping) is checked against a naive O(n) *reference model* that
//! restates the policy's eviction rule as a linear scan over a plain
//! `Vec`. Seeded random traces of insert/access/remove/pop operations
//! drive the production policy and the reference in lockstep, asserting
//! the identical victim at every pop. A divergence means the optimised
//! bookkeeping no longer implements the stated rule.
//!
//! Traces respect `CacheTable`'s call contract (the same one the fuzz
//! oracle enforces): `on_insert` only for untracked keys, `on_access`
//! and `on_remove` only for tracked ones, `pop_victim` whenever
//! non-empty. The staging-region interaction (pinned prefetches are
//! never evicted, for every policy including the adaptive meta-policy)
//! is exercised at the `CacheTable` level at the bottom of this file.

use het_cache::{CacheTable, PolicyKind, GDSF_SCALE};
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};
use std::collections::VecDeque;

type Key = u64;

/// Table capacity the policies are built against. Only SLRU (protected
/// segment = 80% of capacity) and Adaptive read it.
const CAPACITY: usize = 10;
/// Key universe of the random traces — small enough that insert,
/// access, remove, and pop all interleave densely.
const KEY_SPACE: u64 = 64;
/// SLRU's protected-segment size at [`CAPACITY`] (the `from_capacity`
/// 4/5 split mirrored here so the reference model agrees).
const SLRU_PROTECTED_CAP: usize = CAPACITY * 4 / 5;

// ---------------------------------------------------------------------
// Naive O(n) reference models
// ---------------------------------------------------------------------

/// One reference model per fixed policy. Each restates the eviction
/// rule in the most literal form possible: unordered `Vec`s scanned in
/// full at every pop.
enum RefModel {
    /// Victim: minimum last-used tick.
    Lru { tick: u64, m: Vec<(Key, u64)> },
    /// Victim: minimum (frequency, last tick).
    Lfu { tick: u64, m: Vec<(Key, u64, u64)> },
    /// Cold keys (freq < threshold): min (freq, tick). All-hot
    /// fallback: FIFO in promotion order.
    LightLfu {
        threshold: u64,
        tick: u64,
        cold: Vec<(Key, u64, u64)>,
        hot: Vec<Key>,
    },
    /// Second chance: literal hand sweep over a ring of (key, bit).
    Clock {
        ring: VecDeque<Key>,
        referenced: Vec<(Key, bool)>,
    },
    /// Two LRU segments; victims from probation first; protected
    /// overflow demotes its LRU to the probationary MRU position.
    Slru {
        cap: usize,
        tick: u64,
        probation: Vec<(Key, u64)>,
        protected: Vec<(Key, u64)>,
    },
    /// Victim: min (age-based priority, tick); age jumps to the
    /// victim's priority.
    Lfuda {
        age: u64,
        tick: u64,
        m: Vec<(Key, u64, u64, u64)>, // (key, freq, pri, tick)
    },
    /// LFUDA with the cost/size term: pri = age + freq·cost·SCALE/size.
    Gdsf {
        age: u64,
        tick: u64,
        default_price: (u64, u64),
        m: Vec<(Key, u64, u64, u64, u64, u64)>, // (key, freq, cost, size, pri, tick)
    },
}

impl RefModel {
    fn for_kind(kind: PolicyKind) -> RefModel {
        match kind {
            PolicyKind::Lru => RefModel::Lru {
                tick: 0,
                m: Vec::new(),
            },
            PolicyKind::Lfu => RefModel::Lfu {
                tick: 0,
                m: Vec::new(),
            },
            PolicyKind::LightLfu { promote_threshold } => RefModel::LightLfu {
                threshold: promote_threshold,
                tick: 0,
                cold: Vec::new(),
                hot: Vec::new(),
            },
            PolicyKind::Clock => RefModel::Clock {
                ring: VecDeque::new(),
                referenced: Vec::new(),
            },
            PolicyKind::Slru => RefModel::Slru {
                cap: SLRU_PROTECTED_CAP,
                tick: 0,
                probation: Vec::new(),
                protected: Vec::new(),
            },
            PolicyKind::Lfuda => RefModel::Lfuda {
                age: 0,
                tick: 0,
                m: Vec::new(),
            },
            PolicyKind::Gdsf => RefModel::Gdsf {
                age: 0,
                tick: 0,
                default_price: (1, 1),
                m: Vec::new(),
            },
            PolicyKind::Adaptive { .. } => {
                unreachable!("the adaptive meta-policy has no single-rule reference")
            }
        }
    }

    /// Insert of an untracked key; `price` is Some for a priced insert
    /// (`on_insert_cost`), None for the plain path.
    fn insert(&mut self, key: Key, price: Option<(u64, u64)>) {
        match self {
            RefModel::Lru { tick, m } => {
                *tick += 1;
                m.push((key, *tick));
            }
            RefModel::Lfu { tick, m } => {
                *tick += 1;
                m.push((key, 1, *tick));
            }
            RefModel::LightLfu { tick, cold, .. } => {
                *tick += 1;
                cold.push((key, 1, *tick));
            }
            RefModel::Clock { ring, referenced } => {
                ring.push_back(key);
                referenced.push((key, true));
            }
            RefModel::Slru {
                tick, probation, ..
            } => {
                *tick += 1;
                probation.push((key, *tick));
            }
            RefModel::Lfuda { age, tick, m } => {
                *tick += 1;
                m.push((key, 1, *age + 1, *tick));
            }
            RefModel::Gdsf {
                age,
                tick,
                default_price,
                m,
            } => {
                let (cost, size) = match price {
                    Some((c, s)) => (c.max(1), s.max(1)),
                    None => *default_price,
                };
                *default_price = (cost, size);
                *tick += 1;
                let pri = *age + cost * GDSF_SCALE / size;
                m.push((key, 1, cost, size, pri, *tick));
            }
        }
    }

    fn access(&mut self, key: Key) {
        match self {
            RefModel::Lru { tick, m } => {
                *tick += 1;
                let e = m.iter_mut().find(|e| e.0 == key).expect("resident");
                e.1 = *tick;
            }
            RefModel::Lfu { tick, m } => {
                *tick += 1;
                let e = m.iter_mut().find(|e| e.0 == key).expect("resident");
                e.1 += 1;
                e.2 = *tick;
            }
            RefModel::LightLfu {
                threshold,
                tick,
                cold,
                hot,
            } => {
                if hot.contains(&key) {
                    return; // promoted: the O(1) fast path, no bookkeeping
                }
                *tick += 1;
                let i = cold.iter().position(|e| e.0 == key).expect("resident");
                let nf = cold[i].1 + 1;
                if nf >= *threshold {
                    cold.remove(i);
                    hot.push(key);
                } else {
                    cold[i].1 = nf;
                    cold[i].2 = *tick;
                }
            }
            RefModel::Clock { referenced, .. } => {
                let e = referenced
                    .iter_mut()
                    .find(|e| e.0 == key)
                    .expect("resident");
                e.1 = true;
            }
            RefModel::Slru {
                cap,
                tick,
                probation,
                protected,
            } => {
                if let Some(e) = protected.iter_mut().find(|e| e.0 == key) {
                    *tick += 1;
                    e.1 = *tick;
                    return;
                }
                let i = probation.iter().position(|e| e.0 == key).expect("resident");
                probation.remove(i);
                *tick += 1;
                protected.push((key, *tick));
                while protected.len() > *cap {
                    // Demote the protected LRU back to probationary MRU.
                    let j = (0..protected.len())
                        .min_by_key(|&j| protected[j].1)
                        .expect("non-empty while over cap");
                    let (dk, _) = protected.remove(j);
                    *tick += 1;
                    probation.push((dk, *tick));
                }
            }
            RefModel::Lfuda { age, tick, m } => {
                *tick += 1;
                let e = m.iter_mut().find(|e| e.0 == key).expect("resident");
                e.1 += 1;
                e.2 = *age + e.1;
                e.3 = *tick;
            }
            RefModel::Gdsf { age, tick, m, .. } => {
                *tick += 1;
                let e = m.iter_mut().find(|e| e.0 == key).expect("resident");
                e.1 += 1;
                e.4 = *age + e.1 * e.2 * GDSF_SCALE / e.3;
                e.5 = *tick;
            }
        }
    }

    fn remove(&mut self, key: Key) {
        match self {
            RefModel::Lru { m, .. } => m.retain(|e| e.0 != key),
            RefModel::Lfu { m, .. } => m.retain(|e| e.0 != key),
            RefModel::LightLfu { cold, hot, .. } => {
                cold.retain(|e| e.0 != key);
                hot.retain(|&k| k != key);
            }
            RefModel::Clock { ring, referenced } => {
                referenced.retain(|e| e.0 != key);
                ring.retain(|&k| k != key);
            }
            RefModel::Slru {
                probation,
                protected,
                ..
            } => {
                probation.retain(|e| e.0 != key);
                protected.retain(|e| e.0 != key);
            }
            RefModel::Lfuda { m, .. } => m.retain(|e| e.0 != key),
            RefModel::Gdsf { m, .. } => m.retain(|e| e.0 != key),
        }
    }

    fn pop_victim(&mut self) -> Option<Key> {
        match self {
            RefModel::Lru { m, .. } => {
                let i = (0..m.len()).min_by_key(|&i| (m[i].1, m[i].0))?;
                Some(m.remove(i).0)
            }
            RefModel::Lfu { m, .. } => {
                let i = (0..m.len()).min_by_key(|&i| (m[i].1, m[i].2, m[i].0))?;
                Some(m.remove(i).0)
            }
            RefModel::LightLfu { cold, hot, .. } => {
                if !cold.is_empty() {
                    let i = (0..cold.len())
                        .min_by_key(|&i| (cold[i].1, cold[i].2, cold[i].0))
                        .expect("non-empty");
                    return Some(cold.remove(i).0);
                }
                if hot.is_empty() {
                    None
                } else {
                    Some(hot.remove(0))
                }
            }
            RefModel::Clock { ring, referenced } => {
                for _ in 0..ring.len() * 2 + 1 {
                    let key = ring.pop_front()?;
                    let e = referenced
                        .iter_mut()
                        .find(|e| e.0 == key)
                        .expect("ring keys are tracked");
                    if e.1 {
                        e.1 = false;
                        ring.push_back(key);
                    } else {
                        referenced.retain(|e| e.0 != key);
                        return Some(key);
                    }
                }
                None
            }
            RefModel::Slru {
                probation,
                protected,
                ..
            } => {
                if !probation.is_empty() {
                    let i = (0..probation.len())
                        .min_by_key(|&i| (probation[i].1, probation[i].0))
                        .expect("non-empty");
                    return Some(probation.remove(i).0);
                }
                let i = (0..protected.len()).min_by_key(|&i| (protected[i].1, protected[i].0))?;
                Some(protected.remove(i).0)
            }
            RefModel::Lfuda { age, m, .. } => {
                let i = (0..m.len()).min_by_key(|&i| (m[i].2, m[i].3, m[i].0))?;
                let (key, _, pri, _) = m.remove(i);
                *age = pri;
                Some(key)
            }
            RefModel::Gdsf { age, m, .. } => {
                let i = (0..m.len()).min_by_key(|&i| (m[i].4, m[i].5, m[i].0))?;
                let e = m.remove(i);
                *age = e.4;
                Some(e.0)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            RefModel::Lru { m, .. } => m.len(),
            RefModel::Lfu { m, .. } => m.len(),
            RefModel::LightLfu { cold, hot, .. } => cold.len() + hot.len(),
            RefModel::Clock { referenced, .. } => referenced.len(),
            RefModel::Slru {
                probation,
                protected,
                ..
            } => probation.len() + protected.len(),
            RefModel::Lfuda { m, .. } => m.len(),
            RefModel::Gdsf { m, .. } => m.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Trace driver
// ---------------------------------------------------------------------

/// Drives the production policy and its reference model through one
/// seeded random contract-respecting trace, asserting identical victims
/// at every pop and identical tracked-set sizes at every step, then
/// drains both to empty comparing the full victim tail.
fn check_against_reference(kind: PolicyKind, seed: u64, ops: usize) {
    check_against_model(kind, RefModel::for_kind(kind), seed, ops);
}

fn check_against_model(kind: PolicyKind, mut model: RefModel, seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut policy = kind.build(CAPACITY);
    let mut resident: Vec<Key> = Vec::new();

    for step in 0..ops {
        let roll: f64 = rng.gen();
        let full = resident.len() as u64 == KEY_SPACE;
        if roll < 0.45 && !full {
            let key = loop {
                let k = rng.gen_range(0..KEY_SPACE);
                if !resident.contains(&k) {
                    break k;
                }
            };
            // Half the inserts carry an α-β price (cost-aware path;
            // cost/size of 0 checks the clamp), half take the plain
            // default-forwarding path.
            if rng.gen_bool(0.5) {
                let cost = rng.gen_range(0u64..256);
                let size = rng.gen_range(0u64..64);
                policy.on_insert_cost(key, cost, size);
                model.insert(key, Some((cost, size)));
            } else {
                policy.on_insert(key);
                model.insert(key, None);
            }
            resident.push(key);
        } else if roll < 0.75 && !resident.is_empty() {
            let key = resident[rng.gen_range(0..resident.len())];
            policy.on_access(key);
            model.access(key);
        } else if roll < 0.83 && !resident.is_empty() {
            let i = rng.gen_range(0..resident.len());
            let key = resident.swap_remove(i);
            policy.on_remove(key);
            model.remove(key);
        } else if !resident.is_empty() {
            let got = policy.pop_victim();
            let want = model.pop_victim();
            assert_eq!(
                got, want,
                "{kind}: victim diverged from the reference at step {step} (seed {seed})"
            );
            let key = got.expect("non-empty policy returned no victim");
            let i = resident
                .iter()
                .position(|&k| k == key)
                .expect("victim was resident");
            resident.swap_remove(i);
        }
        assert_eq!(
            policy.len(),
            model.len(),
            "{kind}: tracked-set size diverged at step {step} (seed {seed})"
        );
        assert_eq!(policy.len(), resident.len());
    }

    // Drain: the full victim order must agree, not just the prefix the
    // random trace happened to sample.
    while !resident.is_empty() {
        let got = policy.pop_victim();
        assert_eq!(
            got,
            model.pop_victim(),
            "{kind}: victim diverged in the final drain (seed {seed})"
        );
        let key = got.expect("non-empty policy returned no victim");
        let i = resident.iter().position(|&k| k == key).expect("resident");
        resident.swap_remove(i);
    }
    assert_eq!(policy.pop_victim(), None);
    assert_eq!(model.pop_victim(), None);
}

const SEEDS: u64 = 8;
const OPS: usize = 4_000;

#[test]
fn lru_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Lru, seed, OPS);
    }
}

#[test]
fn lfu_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Lfu, seed, OPS);
    }
}

#[test]
fn light_lfu_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::light_lfu(), seed, OPS);
        // A low threshold reaches the all-promoted FIFO fallback.
        check_against_reference(
            PolicyKind::LightLfu {
                promote_threshold: 2,
            },
            seed,
            OPS,
        );
    }
}

#[test]
fn clock_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Clock, seed, OPS);
    }
}

#[test]
fn slru_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Slru, seed, OPS);
    }
}

#[test]
fn lfuda_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Lfuda, seed, OPS);
    }
}

#[test]
fn gdsf_matches_reference() {
    for seed in 0..SEEDS {
        check_against_reference(PolicyKind::Gdsf, seed, OPS);
    }
}

// ---------------------------------------------------------------------
// Adaptive meta-policy
// ---------------------------------------------------------------------

/// With an unreachable evaluation window the meta-policy never leaves
/// its starting inner policy (SLRU), so its victim stream must equal
/// the SLRU reference exactly.
#[test]
fn adaptive_with_unreachable_window_matches_slru_reference() {
    for seed in 0..SEEDS {
        check_against_model(
            PolicyKind::Adaptive { window: 1 << 60 },
            RefModel::for_kind(PolicyKind::Slru),
            seed,
            OPS,
        );
    }
}

/// Replays the same phased trace (skewed, then flat) twice and asserts
/// byte-identical victim streams and switch counts — the determinism
/// guarantee switch points are specced to have (pure function of the
/// observation count, replay in recency order).
#[test]
fn adaptive_victim_stream_and_switches_replay_identically() {
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut policy = PolicyKind::Adaptive { window: 32 }.build(CAPACITY);
        let mut resident: Vec<Key> = Vec::new();
        let mut victims = Vec::new();
        for step in 0..3_000usize {
            // First half: 70% of accesses hit keys 0..4 (skewed).
            // Second half: uniform (flat). The skew estimate must move
            // enough to force at least one switch each way.
            let hot = step < 1_500 && rng.gen_bool(0.7);
            let roll: f64 = rng.gen();
            if roll < 0.4 && (resident.len() as u64) < KEY_SPACE {
                let hot_free = hot && (0..4).any(|k| !resident.contains(&k));
                let key = loop {
                    let k = if hot_free {
                        rng.gen_range(0..4)
                    } else {
                        rng.gen_range(0..KEY_SPACE)
                    };
                    if !resident.contains(&k) {
                        break k;
                    }
                };
                policy.on_insert(key);
                resident.push(key);
            } else if roll < 0.85 && !resident.is_empty() {
                let key = if hot && resident.iter().any(|&k| k < 4) {
                    *resident.iter().find(|&&k| k < 4).expect("checked")
                } else {
                    resident[rng.gen_range(0..resident.len())]
                };
                policy.on_access(key);
            } else if !resident.is_empty() {
                let v = policy.pop_victim().expect("non-empty");
                let i = resident.iter().position(|&k| k == v).expect("resident");
                resident.swap_remove(i);
                victims.push(v);
            }
        }
        (victims, policy.switch_count())
    };
    for seed in [3u64, 17, 40] {
        let (v1, s1) = run(seed);
        let (v2, s2) = run(seed);
        assert_eq!(v1, v2, "victim stream not deterministic (seed {seed})");
        assert_eq!(s1, s2, "switch count not deterministic (seed {seed})");
        assert!(s1 > 0, "phased trace forced no switch (seed {seed})");
    }
}

// ---------------------------------------------------------------------
// Staging-region interaction (CacheTable level)
// ---------------------------------------------------------------------

/// For every policy in the zoo — adaptive included — prefetched entries
/// pinned in the staging region must survive arbitrary overflow
/// eviction until their first read consumes them.
#[test]
fn staging_region_pins_survive_overflow_for_every_policy() {
    for kind in PolicyKind::ALL {
        let mut table = CacheTable::new(8, kind, 0.1);
        for k in 0..3u64 {
            let displaced = table.install_prefetched(k, vec![0.0; 4], 0);
            assert!(displaced.is_none());
        }
        for k in 100..130u64 {
            let displaced = table.install(k, vec![0.0; 4], 1);
            assert!(displaced.is_none());
            for (victim, _) in table.evict_overflow() {
                assert!(
                    victim >= 100,
                    "{kind}: pinned prefetch {victim} was evicted"
                );
            }
            // Overflow never has to dip into the pinned set.
            assert!(table.len() - table.pinned_len() <= table.capacity());
        }
        for k in 0..3u64 {
            assert!(table.find(k), "{kind}: pinned prefetch {k} went missing");
        }
        // Consuming the prefetch unpins: the entry becomes ordinary and
        // evictable, and the table drains below capacity again.
        assert!(table.consume_prefetch(0));
        assert_eq!(table.pinned_len(), 2);
        for k in 200..220u64 {
            let _ = table.install(k, vec![0.0; 4], 2);
            let _ = table.evict_overflow();
        }
        assert!(table.len() - table.pinned_len() <= table.capacity());
        assert!(
            table.find(1) && table.find(2),
            "{kind}: still-pinned keys lost"
        );
    }
}
