//! Property-based tests of the cache table and eviction policies under
//! arbitrary operation sequences.

use het_cache::{CachePolicy, CacheTable, ClockPolicy, LfuPolicy, LightLfuPolicy, LruPolicy, PolicyKind};
use proptest::prelude::*;
use std::collections::HashSet;

/// An abstract op stream over a small key universe.
#[derive(Clone, Debug)]
enum Op {
    Access(u64),
    Insert(u64),
    Remove(u64),
    PopVictim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16).prop_map(Op::Access),
        (0u64..16).prop_map(Op::Insert),
        (0u64..16).prop_map(Op::Remove),
        Just(Op::PopVictim),
    ]
}

/// Drives a policy with a reference resident-set model and checks the
/// bookkeeping never diverges.
fn check_policy(mut policy: Box<dyn CachePolicy>, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut resident: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            Op::Access(k) => {
                if resident.contains(&k) {
                    policy.on_access(k);
                }
            }
            Op::Insert(k) => {
                if !resident.contains(&k) {
                    policy.on_insert(k);
                    resident.insert(k);
                }
            }
            Op::Remove(k) => {
                if resident.remove(&k) {
                    policy.on_remove(k);
                }
            }
            Op::PopVictim => {
                let victim = policy.pop_victim();
                match victim {
                    Some(k) => {
                        prop_assert!(
                            resident.remove(&k),
                            "policy returned non-resident victim {k}"
                        );
                    }
                    None => prop_assert!(
                        resident.is_empty(),
                        "policy claims empty while {} keys resident",
                        resident.len()
                    ),
                }
            }
        }
        prop_assert_eq!(policy.len(), resident.len(), "length diverged");
    }
    Ok(())
}

proptest! {
    #[test]
    fn lru_tracks_reference_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        check_policy(Box::new(LruPolicy::new()), ops)?;
    }

    #[test]
    fn lfu_tracks_reference_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        check_policy(Box::new(LfuPolicy::new()), ops)?;
    }

    #[test]
    fn clock_tracks_reference_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        check_policy(Box::new(ClockPolicy::new()), ops)?;
    }

    #[test]
    fn light_lfu_tracks_reference_model(
        ops in proptest::collection::vec(op_strategy(), 0..200),
        threshold in 1u64..8,
    ) {
        check_policy(Box::new(LightLfuPolicy::new(threshold)), ops)?;
    }

    /// LRU victims come out in exact least-recent order when draining.
    #[test]
    fn lru_drain_order_is_recency_order(keys in proptest::collection::vec(0u64..64, 1..40)) {
        let mut policy = LruPolicy::new();
        let mut last_touch: Vec<u64> = Vec::new();
        for &k in &keys {
            if last_touch.contains(&k) {
                policy.on_access(k);
                last_touch.retain(|&x| x != k);
            } else {
                policy.on_insert(k);
            }
            last_touch.push(k);
        }
        let mut drained = Vec::new();
        while let Some(v) = policy.pop_victim() {
            drained.push(v);
        }
        prop_assert_eq!(drained, last_touch);
    }

    /// The table never exceeds capacity after `evict_overflow`, no matter
    /// the install/update sequence, for every policy.
    #[test]
    fn table_respects_capacity(
        keys in proptest::collection::vec(0u64..256, 1..120),
        capacity in 1usize..24,
        policy_idx in 0usize..4,
    ) {
        let policy =
            [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::LightLfu, PolicyKind::Clock][policy_idx];
        let mut table = CacheTable::new(capacity, policy, 0.1);
        for &k in &keys {
            if !table.find(k) {
                table.install(k, vec![0.0; 4], 0);
            }
            table.update(k, &[1.0, 1.0, 1.0, 1.0]);
            table.bump_clock(k);
            table.evict_overflow();
            prop_assert!(table.len() <= capacity);
        }
    }

    /// Eviction returns exactly the accumulated gradient: the sum of all
    /// updates applied since install, regardless of interleaving.
    #[test]
    fn eviction_payload_equals_update_sum(
        updates in proptest::collection::vec(-10.0f32..10.0, 1..30),
    ) {
        let mut table = CacheTable::new(8, PolicyKind::Lru, 0.5);
        table.install(1, vec![0.0; 1], 3);
        let mut sum = 0.0f32;
        for &u in &updates {
            table.update(1, &[u]);
            table.bump_clock(1);
            sum += u;
        }
        let ev = table.evict(1).expect("resident");
        prop_assert!(ev.dirty);
        prop_assert!((ev.pending_grad[0] - sum).abs() < 1e-3);
        prop_assert_eq!(ev.current_clock, 3 + updates.len() as u64);
    }

    /// The local view always equals install value − lr · (sum of
    /// gradients): read-my-updates as arithmetic.
    #[test]
    fn local_view_is_install_minus_lr_times_sum(
        updates in proptest::collection::vec(-5.0f32..5.0, 0..20),
    ) {
        let lr = 0.25f32;
        let mut table = CacheTable::new(4, PolicyKind::Lfu, lr);
        table.install(7, vec![2.0], 0);
        let mut sum = 0.0f32;
        for &u in &updates {
            table.update(7, &[u]);
            sum += u;
        }
        let view = table.get(7).unwrap()[0];
        prop_assert!((view - (2.0 - lr * sum)).abs() < 1e-3);
    }
}
