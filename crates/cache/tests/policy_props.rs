//! Property-style tests of the cache table and eviction policies under
//! randomised operation sequences, drawn from a seeded in-tree
//! generator so runs are deterministic and hermetic.

use het_cache::{
    CachePolicy, CacheTable, ClockPolicy, LfuPolicy, LightLfuPolicy, LruPolicy, PolicyKind,
};
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};
use std::collections::HashSet;

const CASES: usize = 192;

/// An abstract op stream over a small key universe.
#[derive(Clone, Debug)]
enum Op {
    Access(u64),
    Insert(u64),
    Remove(u64),
    PopVictim,
}

fn random_ops(rng: &mut StdRng, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(0usize..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => Op::Access(rng.gen_range(0u64..16)),
            1 => Op::Insert(rng.gen_range(0u64..16)),
            2 => Op::Remove(rng.gen_range(0u64..16)),
            _ => Op::PopVictim,
        })
        .collect()
}

/// Drives a policy with a reference resident-set model and checks the
/// bookkeeping never diverges.
fn check_policy(mut policy: Box<dyn CachePolicy>, ops: Vec<Op>) {
    let mut resident: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            Op::Access(k) => {
                if resident.contains(&k) {
                    policy.on_access(k);
                }
            }
            Op::Insert(k) => {
                if !resident.contains(&k) {
                    policy.on_insert(k);
                    resident.insert(k);
                }
            }
            Op::Remove(k) => {
                if resident.remove(&k) {
                    policy.on_remove(k);
                }
            }
            Op::PopVictim => {
                let victim = policy.pop_victim();
                match victim {
                    Some(k) => {
                        assert!(
                            resident.remove(&k),
                            "policy returned non-resident victim {k}"
                        );
                    }
                    None => assert!(
                        resident.is_empty(),
                        "policy claims empty while {} keys resident",
                        resident.len()
                    ),
                }
            }
        }
        assert_eq!(policy.len(), resident.len(), "length diverged");
    }
}

#[test]
fn lru_tracks_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0001);
    for _ in 0..CASES {
        check_policy(Box::new(LruPolicy::new()), random_ops(&mut rng, 200));
    }
}

#[test]
fn lfu_tracks_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0002);
    for _ in 0..CASES {
        check_policy(Box::new(LfuPolicy::new()), random_ops(&mut rng, 200));
    }
}

#[test]
fn clock_tracks_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0003);
    for _ in 0..CASES {
        check_policy(Box::new(ClockPolicy::new()), random_ops(&mut rng, 200));
    }
}

#[test]
fn light_lfu_tracks_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0004);
    for _ in 0..CASES {
        let threshold = rng.gen_range(1u64..8);
        check_policy(
            Box::new(LightLfuPolicy::new(threshold)),
            random_ops(&mut rng, 200),
        );
    }
}

/// The whole zoo — including the adaptive meta-policy with a window
/// small enough to switch mid-stream — keeps its resident-set
/// bookkeeping consistent under arbitrary op sequences.
#[test]
fn zoo_tracks_reference_model() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0011);
    for _ in 0..CASES {
        let kind = [
            PolicyKind::Slru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Adaptive { window: 8 },
        ][rng.gen_range(0usize..4)];
        check_policy(kind.build(12), random_ops(&mut rng, 200));
    }
}

/// LRU victims come out in exact least-recent order when draining.
#[test]
fn lru_drain_order_is_recency_order() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0005);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..64)).collect();
        let mut policy = LruPolicy::new();
        let mut last_touch: Vec<u64> = Vec::new();
        for &k in &keys {
            if last_touch.contains(&k) {
                policy.on_access(k);
                last_touch.retain(|&x| x != k);
            } else {
                policy.on_insert(k);
            }
            last_touch.push(k);
        }
        let mut drained = Vec::new();
        while let Some(v) = policy.pop_victim() {
            drained.push(v);
        }
        assert_eq!(drained, last_touch);
    }
}

/// The table never exceeds capacity after `evict_overflow`, no matter
/// the install/update sequence, for every policy.
#[test]
fn table_respects_capacity() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0006);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..120);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..256)).collect();
        let capacity = rng.gen_range(1usize..24);
        let policy = PolicyKind::ALL[rng.gen_range(0usize..PolicyKind::ALL.len())];
        let mut table = CacheTable::new(capacity, policy, 0.1);
        for &k in &keys {
            if !table.find(k) {
                let _ = table.install(k, vec![0.0; 4], 0);
            }
            table.update(k, &[1.0, 1.0, 1.0, 1.0]);
            table.bump_clock(k);
            table.evict_overflow();
            assert!(table.len() <= capacity);
        }
    }
}

/// Eviction returns exactly the accumulated gradient: the sum of all
/// updates applied since install, regardless of interleaving.
#[test]
fn eviction_payload_equals_update_sum() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0007);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..30);
        let updates: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let mut table = CacheTable::new(8, PolicyKind::Lru, 0.5);
        let _ = table.install(1, vec![0.0; 1], 3);
        let mut sum = 0.0f32;
        for &u in &updates {
            table.update(1, &[u]);
            table.bump_clock(1);
            sum += u;
        }
        let ev = table.evict(1).expect("resident");
        assert!(ev.dirty);
        assert!((ev.pending_grad[0] - sum).abs() < 1e-3);
        assert_eq!(ev.current_clock, 3 + updates.len() as u64);
    }
}

/// Trace counters mirror `CacheStats` exactly under randomised
/// lookup/install/evict/invalidate/crash sequences, and the install
/// ledger balances: every install is accounted for by an eviction, a
/// crash drop, or final residency.
#[test]
fn trace_counters_reconcile_with_cache_stats() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0010);
    for _ in 0..CASES {
        het_trace::start(Vec::new());
        let capacity = rng.gen_range(1usize..12);
        // Full zoo, with a small-window adaptive so switch boundaries
        // land inside the op stream for some cases.
        let zoo = [
            PolicyKind::Lru,
            PolicyKind::Lfu,
            PolicyKind::light_lfu(),
            PolicyKind::Clock,
            PolicyKind::Slru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Adaptive { window: 16 },
        ];
        let policy = zoo[rng.gen_range(0usize..zoo.len())];
        let mut table = CacheTable::new(capacity, policy, 0.1);
        let mut crash_dirty = 0u64;
        for _ in 0..rng.gen_range(0usize..160) {
            let k = rng.gen_range(0u64..24);
            match rng.gen_range(0u32..8) {
                // A lookup: hit when resident, miss + fetch-install
                // (plus capacity eviction) otherwise.
                0..=2 => {
                    if table.find(k) {
                        table.record_hit();
                        table.update(k, &[1.0; 4]);
                        table.bump_clock(k);
                    } else {
                        table.record_miss();
                        let displaced = table.install(k, vec![0.0; 4], 0);
                        assert!(displaced.is_none());
                        let _ = table.evict_overflow();
                    }
                }
                // Refresh-install over a (possibly dirty) entry.
                3 | 4 => {
                    let _ = table.install(k, vec![0.0; 4], 1);
                    let _ = table.evict_overflow();
                }
                5 => {
                    let _ = table.evict(k);
                }
                // Invalidation resync: evict then record.
                6 => {
                    if table.find(k) {
                        let _ = table.evict(k);
                        table.record_invalidation();
                    }
                }
                _ => {
                    crash_dirty +=
                        table.crash_clear().iter().filter(|(_, e)| e.dirty).count() as u64;
                }
            }
        }
        let log = het_trace::finish();
        let stats = *table.stats();
        assert_eq!(log.counter("cache", "hits"), stats.hits);
        assert_eq!(log.counter("cache", "misses"), stats.misses);
        assert_eq!(log.counter("cache", "writebacks"), stats.writebacks);
        assert_eq!(log.counter("cache", "invalidations"), stats.invalidations);
        assert_eq!(
            log.counter("cache", "capacity_evictions"),
            stats.capacity_evictions
        );
        assert_eq!(
            log.counter("cache", "hits") + log.counter("cache", "misses"),
            stats.lookups()
        );
        assert_eq!(
            log.counter("cache", "installs"),
            log.counter("cache", "evictions")
                + log.counter("cache", "crash_drops")
                + table.len() as u64,
            "install ledger out of balance"
        );
        assert_eq!(log.counter("cache", "dirtied"), stats.dirtied);
        // Adaptive switches are reported identically through the trace
        // counter and the table accessor (and are zero for fixed
        // policies, keeping their trace streams byte-stable).
        assert_eq!(
            log.counter("cache", "policy_switches"),
            table.policy_switches(),
            "policy-switch ledger out of balance"
        );
        if !policy.is_adaptive() {
            assert_eq!(table.policy_switches(), 0);
        }
        // Gradient conservation: every clean→dirty transition ends as a
        // write-back, an accounted crash loss, or a still-resident dirty
        // entry — never a silent drop.
        let resident_keys: Vec<_> = table.keys().collect();
        let resident_dirty = resident_keys
            .iter()
            .filter(|&&k| table.peek(k).is_some_and(|e| e.dirty))
            .count() as u64;
        assert_eq!(
            stats.dirtied,
            stats.writebacks + crash_dirty + resident_dirty,
            "dirty ledger out of balance"
        );
    }
}

/// Stats/trace reconciliation must hold *across* an adaptive switch
/// boundary: a skewed lookup stream forces the meta-policy through at
/// least one switch, and afterwards every counter still matches
/// `CacheStats`, the install ledger still balances, and the switch
/// count agrees between the trace log, the `policy_switch` events, and
/// the table accessor.
#[test]
fn adaptive_switch_boundary_preserves_stat_reconciliation() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0012);
    het_trace::start(Vec::new());
    let mut table = CacheTable::new(8, PolicyKind::Adaptive { window: 16 }, 0.1);
    for i in 0..600u64 {
        // Heavily skewed head (drives the skew estimate up), uniform
        // tail in the second half (drives it back down): at least one
        // switch each way.
        let k = if i < 300 {
            if rng.gen_bool(0.8) {
                rng.gen_range(0u64..3)
            } else {
                rng.gen_range(0u64..48)
            }
        } else {
            rng.gen_range(0u64..48)
        };
        if table.find(k) {
            table.record_hit();
            table.update(k, &[1.0; 4]);
            table.bump_clock(k);
        } else {
            table.record_miss();
            let _ = table.install(k, vec![0.0; 4], 0);
            let _ = table.evict_overflow();
        }
    }
    let log = het_trace::finish();
    let stats = *table.stats();
    assert!(
        table.policy_switches() > 0,
        "skewed-then-flat stream forced no switch"
    );
    assert_eq!(
        log.counter("cache", "policy_switches"),
        table.policy_switches()
    );
    assert_eq!(
        log.events_of("cache")
            .filter(|e| e.name == "policy_switch")
            .count() as u64,
        table.policy_switches(),
        "one policy_switch event per switch"
    );
    assert_eq!(log.counter("cache", "hits"), stats.hits);
    assert_eq!(log.counter("cache", "misses"), stats.misses);
    assert_eq!(
        log.counter("cache", "capacity_evictions"),
        stats.capacity_evictions
    );
    assert_eq!(
        log.counter("cache", "installs"),
        log.counter("cache", "evictions") + table.len() as u64,
        "install ledger out of balance across switch boundary"
    );
}

/// The local view always equals install value − lr · (sum of
/// gradients): read-my-updates as arithmetic.
#[test]
fn local_view_is_install_minus_lr_times_sum() {
    let mut rng = StdRng::seed_from_u64(0xCACE_0008);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..20);
        let updates: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let lr = 0.25f32;
        let mut table = CacheTable::new(4, PolicyKind::Lfu, lr);
        let _ = table.install(7, vec![2.0], 0);
        let mut sum = 0.0f32;
        for &u in &updates {
            table.update(7, &[u]);
            sum += u;
        }
        let view = table.get(7).unwrap()[0];
        assert!((view - (2.0 - lr * sum)).abs() < 1e-3);
    }
}
