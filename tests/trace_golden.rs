//! Golden trace tests for the observability layer.
//!
//! The contract under test: (1) tracing is **deterministic** — two runs
//! with the same seed, config, and fault schedule emit byte-identical
//! JSONL traces, in BSP and ASP modes, with and without fault
//! injection; (2) tracing is **inert** — enabling it does not perturb
//! the simulated run in any observable way; (3) every trace is
//! **schema-valid** (`het-trace-v1`) and covers all four instrumented
//! components; (4) trace counters **reconcile** with the statistics the
//! trainer reports through `TrainReport`; (5) the committed golden
//! fixtures under `tests/golden/` stay schema-valid.
//!
//! Regenerate the fixtures after intentionally changing the
//! instrumentation with:
//!
//! ```text
//! cargo test -p het --test trace_golden -- --ignored regenerate
//! ```

use het::json::Json;
use het::prelude::*;
use het::trace;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
const FIXTURE_SEED: u64 = 17;
const FIXTURE_ITERS: u64 = 60;

fn config(seed: u64, preset: SystemPreset, iters: u64, faults: FaultConfig) -> TrainerConfig {
    let mut config = TrainerConfig::tiny(preset);
    config.seed = seed;
    config.max_iterations = iters;
    config.faults = faults;
    config
}

fn run(seed: u64, preset: SystemPreset, iters: u64, faults: FaultConfig) -> TrainReport {
    let dataset = CtrDataset::new(CtrConfig::tiny(seed));
    let config = config(seed, preset, iters, faults);
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    trainer.run()
}

fn traced_run(
    seed: u64,
    preset: SystemPreset,
    iters: u64,
    faults: FaultConfig,
) -> (TrainReport, trace::TraceLog) {
    trace::start(vec![
        (
            "system".to_string(),
            Json::Str(preset.config().name.to_string()),
        ),
        ("seed".to_string(), Json::UInt(seed)),
        ("iters".to_string(), Json::UInt(iters)),
    ]);
    let report = run(seed, preset, iters, faults);
    (report, trace::finish())
}

/// A schedule with every fault class, horizon placed inside `sim_time`
/// so each event fires before the run ends (same shape as `faults.rs`).
fn full_spec(sim_time: SimTime) -> FaultConfig {
    let mut cfg = FaultConfig::disabled();
    cfg.enabled = true;
    cfg.spec.worker_crashes = 1;
    cfg.spec.shard_outages = 1;
    cfg.spec.stragglers = 1;
    cfg.spec.link_degradations = 1;
    cfg.spec.message_drop_prob = 0.02;
    cfg.spec.horizon = SimDuration::from_secs_f64(sim_time.as_secs_f64() * 0.8);
    cfg
}

fn assert_bit_identical(a: &TrainReport, b: &TrainReport) {
    assert_eq!(a.total_sim_time, b.total_sim_time);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    // BSP (HET Cache) and ASP (HET PS), each clean and fault-injected.
    for preset in [
        SystemPreset::HetCache { staleness: 10 },
        SystemPreset::HetPs,
    ] {
        let (report_a, log_a) = traced_run(23, preset, 160, FaultConfig::disabled());
        let (report_b, log_b) = traced_run(23, preset, 160, FaultConfig::disabled());
        assert_bit_identical(&report_a, &report_b);
        let (jsonl_a, jsonl_b) = (log_a.to_jsonl(), log_b.to_jsonl());
        assert!(!log_a.events.is_empty(), "{preset:?}: trace has no events");
        assert_eq!(jsonl_a, jsonl_b, "{preset:?}: clean traces diverge");
        trace::schema::validate_jsonl(&jsonl_a).expect("clean trace is schema-valid");

        let faults = full_spec(report_a.total_sim_time);
        let (fr_a, flog_a) = traced_run(23, preset, 160, faults.clone());
        let (fr_b, flog_b) = traced_run(23, preset, 160, faults);
        assert_bit_identical(&fr_a, &fr_b);
        let (fjsonl_a, fjsonl_b) = (flog_a.to_jsonl(), flog_b.to_jsonl());
        assert_eq!(fjsonl_a, fjsonl_b, "{preset:?}: faulted traces diverge");
        trace::schema::validate_jsonl(&fjsonl_a).expect("faulted trace is schema-valid");
        // A fault schedule must change the trace, not just the report.
        assert_ne!(jsonl_a, fjsonl_a, "{preset:?}: faults left no trace");
    }
}

#[test]
fn traces_are_schema_valid_and_cover_every_component() {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let clean = run(29, preset, 240, FaultConfig::disabled());
    let (report, log) = traced_run(29, preset, 240, full_spec(clean.total_sim_time));
    assert!(report.faults.worker_crashes > 0, "crash never fired");
    assert!(report.faults.shard_failovers > 0, "failover never fired");

    let summary = trace::schema::validate_jsonl(&log.to_jsonl()).expect("schema-valid");
    for comp in ["cache", "client", "ps", "simnet", "trainer"] {
        assert!(
            summary.components.contains(comp),
            "component {comp} missing from {:?}",
            summary.components
        );
    }
    for kind in [
        "trainer.read",
        "trainer.compute",
        "trainer.write",
        "trainer.barrier",
        "trainer.worker_crash",
        "client.read_window",
        "ps.failover",
        "ps.checkpoint",
    ] {
        assert!(
            summary.event_kinds.contains(kind),
            "event kind {kind} missing from {:?}",
            summary.event_kinds
        );
    }
    assert!(summary.spans > 0);
    assert!(summary.counters > 0);
}

#[test]
fn tracing_leaves_the_training_run_unchanged() {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let clean = run(31, preset, 160, FaultConfig::disabled());
    let faults = full_spec(clean.total_sim_time);

    let untraced = run(31, preset, 160, faults.clone());
    let (traced, _log) = traced_run(31, preset, 160, faults);
    assert_bit_identical(&untraced, &traced);
}

#[test]
fn trace_counters_reconcile_with_report_statistics() {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let clean = run(37, preset, 240, FaultConfig::disabled());
    let (report, log) = traced_run(37, preset, 240, full_spec(clean.total_sim_time));

    // Cache counters track CacheStats exactly (summed over workers).
    assert_eq!(log.counter("cache", "hits"), report.cache.hits);
    assert_eq!(log.counter("cache", "misses"), report.cache.misses);
    assert_eq!(log.counter("cache", "writebacks"), report.cache.writebacks);
    assert_eq!(log.counter("cache", "dirtied"), report.cache.dirtied);
    // Gradient conservation, run-wide: every clean→dirty transition is
    // either written back or lost to an injected crash (finalize
    // flushes the remainder, so nothing stays resident at the end).
    assert_eq!(
        report.cache.dirtied,
        report.cache.writebacks + report.faults.dirty_entries_lost,
        "dirtied entries neither written back nor accounted as crash loss"
    );
    assert_eq!(
        log.counter("cache", "invalidations"),
        report.cache.invalidations
    );
    assert_eq!(
        log.counter("cache", "capacity_evictions"),
        report.cache.capacity_evictions
    );

    // Fault counters track FaultStats.
    let f = &report.faults;
    assert_eq!(log.counter("trainer", "degraded_reads"), f.degraded_reads);
    assert_eq!(log.counter("trainer", "msg_drops"), f.retries);
    assert_eq!(log.counter("ps", "failovers"), f.shard_failovers);

    // Fault *events* appear once per recorded fault.
    let count =
        |comp: &str, name: &str| log.events_of(comp).filter(|e| e.name == name).count() as u64;
    assert_eq!(count("trainer", "worker_crash"), f.worker_crashes);
    assert_eq!(count("ps", "failover"), f.shard_failovers);
    assert_eq!(count("ps", "checkpoint"), f.checkpoints);
    assert_eq!(count("trainer", "blocked_wait"), f.blocked_ops);
    assert_eq!(count("trainer", "straggler_slow"), f.straggler_slow_iters);

    // Per-category byte counters sum to the report's total traffic.
    let byte_total: u64 = [
        "bytes_embedding_fetch",
        "bytes_embedding_push",
        "bytes_clock_sync",
        "bytes_dense_ps",
        "bytes_dense_allreduce",
        "bytes_sparse_allgather",
    ]
    .iter()
    .map(|name| log.counter("simnet", name))
    .sum();
    assert_eq!(byte_total, report.comm.total_bytes());
}

#[test]
fn chrome_export_is_well_formed_json() {
    let (_report, log) = traced_run(41, SystemPreset::HetPs, 80, FaultConfig::disabled());
    let chrome = trace::chrome::to_chrome_trace(&log);
    let parsed = het::json::from_str(&chrome).expect("chrome export parses");
    let Json::Obj(fields) = parsed else {
        panic!("chrome export is not an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Json::Arr(events) = events else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty());
}

fn fixture_bsp_faulted() -> trace::TraceLog {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let clean = run(FIXTURE_SEED, preset, FIXTURE_ITERS, FaultConfig::disabled());
    let mut faults = full_spec(clean.total_sim_time);
    faults.checkpoint_every = 20;
    traced_run(FIXTURE_SEED, preset, FIXTURE_ITERS, faults).1
}

fn fixture_asp_clean() -> trace::TraceLog {
    traced_run(
        FIXTURE_SEED,
        SystemPreset::HetPs,
        FIXTURE_ITERS,
        FaultConfig::disabled(),
    )
    .1
}

/// The prefetch-enabled fixture: BSP HET Cache with lookahead depth 4,
/// clean schedule — the trace that pins down the `prefetcher`
/// component's issue/install/hit/waste instrumentation.
fn fixture_bsp_prefetch() -> (TrainReport, trace::TraceLog) {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let mut cfg = config(FIXTURE_SEED, preset, FIXTURE_ITERS, FaultConfig::disabled());
    cfg.lookahead_depth = 4;
    trace::start(vec![
        (
            "system".to_string(),
            Json::Str(preset.config().name.to_string()),
        ),
        ("seed".to_string(), Json::UInt(FIXTURE_SEED)),
        ("iters".to_string(), Json::UInt(FIXTURE_ITERS)),
        ("lookahead_depth".to_string(), Json::UInt(4)),
    ]);
    let dataset = CtrDataset::new(CtrConfig::tiny(FIXTURE_SEED));
    let mut trainer = Trainer::new(cfg, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    let report = trainer.run();
    (report, trace::finish())
}

/// The tiered-store fixture: BSP HET Cache over `tiered:32`, clean
/// schedule — a hot tier small enough that demotion, cold reads, and
/// compaction all fire inside 60 iterations. Pins the `store`
/// component's counter instrumentation at fixture granularity.
fn fixture_bsp_tiered() -> (TrainReport, trace::TraceLog) {
    let preset = SystemPreset::HetCache { staleness: 10 };
    let mut cfg = config(FIXTURE_SEED, preset, FIXTURE_ITERS, FaultConfig::disabled());
    cfg.store = StoreSpec::Tiered(TieredConfig::new(32));
    trace::start(vec![
        (
            "system".to_string(),
            Json::Str(preset.config().name.to_string()),
        ),
        ("seed".to_string(), Json::UInt(FIXTURE_SEED)),
        ("iters".to_string(), Json::UInt(FIXTURE_ITERS)),
        ("tiered_hot".to_string(), Json::UInt(32)),
    ]);
    let dataset = CtrDataset::new(CtrConfig::tiny(FIXTURE_SEED));
    let mut trainer = Trainer::new(cfg, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    let report = trainer.run();
    (report, trace::finish())
}

#[test]
fn committed_golden_fixtures_validate_against_the_schema() {
    for (name, want_cache, want_prefetch, want_store) in [
        ("bsp_cache_faulted.trace.jsonl", true, false, false),
        ("asp_ps_clean.trace.jsonl", false, false, false),
        ("bsp_cache_prefetch.trace.jsonl", true, true, false),
        ("bsp_cache_tiered.trace.jsonl", true, false, true),
    ] {
        let path = format!("{GOLDEN_DIR}/{name}");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
        let summary = trace::schema::validate_jsonl(&text)
            .unwrap_or_else(|e| panic!("fixture {name} is schema-invalid: {e}"));
        assert!(summary.events > 0, "{name}: no events");
        assert!(summary.counters > 0, "{name}: no counters");
        for comp in ["ps", "simnet", "trainer"] {
            assert!(
                summary.components.contains(comp),
                "{name}: component {comp} missing"
            );
        }
        assert_eq!(summary.components.contains("cache"), want_cache, "{name}");
        // The clock-window read events only exist on the cached path;
        // a DirectPsClient never admits stale state, so it emits none.
        assert_eq!(summary.components.contains("client"), want_cache, "{name}");
        // The prefetcher lane appears only in lookahead-enabled runs —
        // the other fixtures staying prefetcher-free *is* the depth-0
        // byte-identity guarantee, pinned at fixture granularity.
        assert_eq!(
            summary.components.contains("prefetcher"),
            want_prefetch,
            "{name}"
        );
        // Likewise the store lane appears only in tiered runs — the
        // Mem fixtures staying store-free *is* the flat-store
        // byte-identity guarantee, pinned at fixture granularity.
        assert_eq!(summary.components.contains("store"), want_store, "{name}");
    }
}

/// The tiered fixture run's trace reconciles with its report: the
/// `store` counters match the shard-summed `StoreSummary`, the
/// client/background split of modelled disk time closes exactly, and
/// the hot tier actually spilled (demotions, cold reads, compactions
/// all nonzero — otherwise the fixture pins nothing).
#[test]
fn tiered_fixture_reconciles_store_counters() {
    let (report, log) = fixture_bsp_tiered();
    let s = report.store.expect("tiered fixture must report store");
    assert!(s.stats.demotions > 0, "32-row hot tier never demoted");
    assert!(s.stats.cold_read_bytes > 0, "no row was ever read back");
    assert!(s.stats.io_ns > 0, "tiering charged no modelled disk time");
    assert_eq!(
        s.stats.io_ns,
        s.client_io_ns + s.background_io_ns,
        "disk time does not split cleanly into client + background"
    );
    assert_eq!(log.counter("store", "hot_hits"), s.stats.hot_hits);
    assert_eq!(log.counter("store", "promotions"), s.stats.promotions);
    assert_eq!(log.counter("store", "demotions"), s.stats.demotions);
    assert_eq!(log.counter("store", "compactions"), s.stats.compactions);
    assert_eq!(log.counter("store", "io_ns"), s.stats.io_ns);
}

/// The committed fixtures must be byte-identical to a freshly derived
/// trace: this catches an instrumentation change that forgot to
/// regenerate them (the ignored `regenerate_golden_fixtures` test).
/// The prefetch fixture run's trace reconciles with its report — the
/// prefetcher counters match the `prefetch` summary, the cache's
/// prefetch ledger closes, and every hit is a prefetch hit or a demand
/// hit — and its Chrome export shows the overlap: a `prefetch_issue`
/// span in the dedicated prefetcher lane whose interval overlaps a
/// trainer span on the same worker track.
#[test]
fn prefetch_fixture_reconciles_and_chrome_spans_overlap() {
    let (report, log) = fixture_bsp_prefetch();
    let p = report
        .prefetch
        .expect("depth-4 fixture must report prefetch");
    assert!(p.issued_keys > 0, "fixture prefetcher never pulled");
    assert_eq!(log.counter("prefetcher", "issued_keys"), p.issued_keys);
    assert_eq!(
        log.counter("cache", "prefetch_installs"),
        report.cache.prefetch_installs
    );
    assert_eq!(
        log.counter("cache", "prefetch_hits"),
        report.cache.prefetch_hits
    );
    assert_eq!(
        log.counter("cache", "prefetch_wasted"),
        report.cache.prefetch_wasted
    );
    assert_eq!(
        report.cache.prefetch_installs,
        report.cache.prefetch_hits + report.cache.prefetch_wasted,
        "fixture cache prefetch ledger does not close"
    );
    // Prefetch hits + demand hits account for every hit.
    assert_eq!(log.counter("cache", "hits"), report.cache.hits);
    assert!(report.cache.prefetch_hits > 0);
    assert!(report.cache.prefetch_hits <= report.cache.hits);

    let summary = trace::schema::validate_jsonl(&log.to_jsonl()).expect("schema-valid");
    assert!(summary.components.contains("prefetcher"));
    for kind in ["prefetcher.prefetch_issue", "prefetcher.prefetch_install"] {
        assert!(
            summary.event_kinds.contains(kind),
            "event kind {kind} missing from {:?}",
            summary.event_kinds
        );
    }

    // Comm/compute overlap, visible in the raw spans: some issued
    // transfer's [t, t+dur] intersects a trainer span of the same
    // worker (the work it hid behind).
    let overlapping = log
        .events
        .iter()
        .filter(|e| e.comp == "prefetcher" && e.name == "prefetch_issue")
        .any(|pf| {
            let (pf_start, pf_end) = (pf.t_ns, pf.t_ns + pf.dur_ns.unwrap_or(0));
            log.events.iter().any(|tr| {
                tr.comp == "trainer"
                    && tr.worker == pf.worker
                    && tr
                        .dur_ns
                        .is_some_and(|d| tr.t_ns < pf_end && pf_start < tr.t_ns + d)
            })
        });
    assert!(overlapping, "no prefetch_issue span overlaps trainer work");

    // And the Chrome export renders the prefetcher as its own lane.
    let chrome = trace::chrome::to_chrome_trace(&log);
    assert!(chrome.contains(r#""name":"het-prefetch""#));
    assert!(chrome.contains("prefetcher.prefetch_issue"));
}

#[test]
fn golden_fixtures_are_current() {
    for (name, log) in [
        ("bsp_cache_faulted.trace.jsonl", fixture_bsp_faulted()),
        ("asp_ps_clean.trace.jsonl", fixture_asp_clean()),
        ("bsp_cache_prefetch.trace.jsonl", fixture_bsp_prefetch().1),
        ("bsp_cache_tiered.trace.jsonl", fixture_bsp_tiered().1),
    ] {
        let path = format!("{GOLDEN_DIR}/{name}");
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
        let derived = log.to_jsonl();
        assert_eq!(
            committed, derived,
            "{name}: committed fixture is stale — regenerate with \
             `cargo test -p het --test trace_golden -- --ignored regenerate`"
        );
        // The replay API must read back exactly what the writer emits,
        // from text or from the in-memory log.
        let parsed = trace::replay::ReplayLog::parse(&committed)
            .unwrap_or_else(|e| panic!("{name}: replay parse failed: {e}"));
        assert_eq!(
            parsed,
            trace::replay::ReplayLog::from(&log),
            "{name}: replay-from-text and replay-from-memory disagree"
        );
    }
}

/// Rewrites `tests/golden/*.trace.jsonl`. Run manually after an
/// intentional instrumentation change:
/// `cargo test -p het --test trace_golden -- --ignored regenerate`.
#[test]
#[ignore = "rewrites the committed golden fixtures"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(GOLDEN_DIR).expect("create tests/golden");
    let bsp = fixture_bsp_faulted().to_jsonl();
    let asp = fixture_asp_clean().to_jsonl();
    let prefetch = fixture_bsp_prefetch().1.to_jsonl();
    let tiered = fixture_bsp_tiered().1.to_jsonl();
    std::fs::write(format!("{GOLDEN_DIR}/bsp_cache_faulted.trace.jsonl"), bsp).unwrap();
    std::fs::write(format!("{GOLDEN_DIR}/asp_ps_clean.trace.jsonl"), asp).unwrap();
    std::fs::write(
        format!("{GOLDEN_DIR}/bsp_cache_prefetch.trace.jsonl"),
        prefetch,
    )
    .unwrap();
    std::fs::write(format!("{GOLDEN_DIR}/bsp_cache_tiered.trace.jsonl"), tiered).unwrap();
}
