//! Convergence-quality integration tests: the paper's Table 2 claims —
//! moderate staleness preserves model quality, unbounded staleness
//! degrades it — plus cache-policy effects on the miss rate (Fig. 8's
//! qualitative ordering).

use het::prelude::*;

fn run_with_staleness(s: u64, iters: u64) -> TrainReport {
    let mut cfg = CtrConfig::criteo_like(17);
    cfg.n_train = 10_000;
    cfg.n_test = 1_500;
    cfg.vocab_sizes = Some(het::data::ctr::scaled_criteo_vocabs(26 * 400));
    let dataset = CtrDataset::new(cfg);
    let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: s });
    config.dim = 16;
    config.lr = 0.1;
    config.max_iterations = iters;
    config.eval_every = iters;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 26, 16, &[32]));
    trainer.run()
}

#[test]
fn moderate_staleness_preserves_quality() {
    // Table 2 (left): s=100 final AUC ≈ s=0 final AUC.
    let s0 = run_with_staleness(0, 1_600);
    let s100 = run_with_staleness(100, 1_600);
    assert!(
        s0.final_metric > 0.55,
        "baseline should learn, got {}",
        s0.final_metric
    );
    assert!(
        (s0.final_metric - s100.final_metric).abs() < 0.05,
        "s=100 ({:.4}) should match s=0 ({:.4})",
        s100.final_metric,
        s0.final_metric
    );
}

#[test]
fn unbounded_staleness_costs_quality_or_never_exceeds_bounded() {
    // Table 2 (left): s=∞ visibly degrades. With unbounded staleness the
    // cache never revalidates, so cross-worker updates are invisible.
    let s100 = run_with_staleness(100, 1_600);
    let s_inf = run_with_staleness(u64::MAX, 1_600);
    assert!(
        s_inf.final_metric <= s100.final_metric + 0.01,
        "unbounded staleness ({:.4}) should not beat bounded ({:.4})",
        s_inf.final_metric,
        s100.final_metric
    );
    // And it must save at least as much communication.
    assert!(s_inf.comm.embedding_bytes() <= s100.comm.embedding_bytes());
}

#[test]
fn lfu_beats_lru_on_skewed_access() {
    // Fig. 8: LFU tracks long-term popularity better than LRU.
    let run_policy = |policy: PolicyKind| {
        let graph = Graph::generate(GraphConfig {
            n_nodes: 4_000,
            ..GraphConfig::ogbn_mag_like(23)
        });
        let classes = graph.config().n_classes;
        let dataset = GnnDataset::new(graph, NeighborSampler::new(6, 4));
        let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 })
            .with_cache(0.05, policy);
        config.dim = 8;
        config.max_iterations = 400;
        config.eval_every = 400;
        let mut trainer = Trainer::new(config, dataset, move |rng| {
            GraphSage::new(rng, 8, 16, classes)
        });
        trainer.run()
    };
    let lru = run_policy(PolicyKind::Lru);
    let lfu = run_policy(PolicyKind::Lfu);
    assert!(
        lfu.cache.miss_rate() <= lru.cache.miss_rate() + 0.02,
        "LFU miss rate {:.3} should be at or below LRU {:.3}",
        lfu.cache.miss_rate(),
        lru.cache.miss_rate()
    );
}

#[test]
fn bigger_cache_lower_miss_rate() {
    // Fig. 8: miss rate falls as the cache grows.
    let run_frac = |frac: f64| {
        let graph = Graph::generate(GraphConfig {
            n_nodes: 4_000,
            ..GraphConfig::reddit_like(29)
        });
        let classes = graph.config().n_classes;
        let dataset = GnnDataset::new(graph, NeighborSampler::new(6, 4));
        let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 })
            .with_cache(frac, PolicyKind::Lfu);
        config.dim = 8;
        config.max_iterations = 300;
        config.eval_every = 300;
        let mut trainer = Trainer::new(config, dataset, move |rng| {
            GraphSage::new(rng, 8, 16, classes)
        });
        trainer.run().cache.miss_rate()
    };
    let small = run_frac(0.03);
    let large = run_frac(0.15);
    assert!(
        large < small,
        "15% cache miss rate {large:.3} should be below 3% cache {small:.3}"
    );
}

#[test]
fn recency_policies_catch_up_under_popularity_drift() {
    // Extension beyond the paper: under a drifting hot set, pure
    // frequency (LFU) keeps stale history alive, while recency-aware
    // policies adapt. The gap between LFU and LRU must shrink (or
    // invert) relative to the stationary workload of
    // `lfu_beats_lru_on_skewed_access`.
    let run_policy = |policy: PolicyKind, drift: u64| {
        let mut cfg = CtrConfig::criteo_like(77);
        cfg.n_train = 20_000;
        cfg.n_test = 1_000;
        cfg.vocab_sizes = Some(het::data::ctr::scaled_criteo_vocabs(26 * 400));
        cfg.drift_period = drift;
        let dataset = CtrDataset::new(cfg);
        let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 })
            .with_cache(0.10, policy);
        config.dim = 8;
        config.max_iterations = 600;
        config.eval_every = 600;
        let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 26, 8, &[16]));
        trainer.run().cache.miss_rate()
    };
    // Stationary: LFU at or below LRU (the paper's Fig. 8 finding).
    let lru_stationary = run_policy(PolicyKind::Lru, 0);
    let lfu_stationary = run_policy(PolicyKind::Lfu, 0);
    assert!(lfu_stationary <= lru_stationary + 0.02);

    // Fast drift: LRU must not be (meaningfully) worse than LFU — the
    // stale frequency history stops paying off.
    let lru_drift = run_policy(PolicyKind::Lru, 2_000);
    let lfu_drift = run_policy(PolicyKind::Lfu, 2_000);
    let stationary_gap = lru_stationary - lfu_stationary;
    let drift_gap = lru_drift - lfu_drift;
    assert!(
        drift_gap <= stationary_gap + 0.02,
        "drift should erode LFU's advantage: stationary gap {stationary_gap:.3}, drift gap {drift_gap:.3}"
    );
}

#[test]
fn staleness_sweep_is_monotone_in_communication() {
    let mut prev_bytes = u64::MAX;
    for s in [0u64, 10, 100, 1_000] {
        let r = run_with_staleness(s, 600);
        assert!(
            r.comm.embedding_bytes() <= prev_bytes,
            "s={s}: bytes should not grow with staleness"
        );
        prev_bytes = r.comm.embedding_bytes();
    }
}
