//! Empirical checks of the paper's Theorem 1 (convergence under the
//! per-embedding clock-bounded consistency model): with a suitable
//! constant learning rate and bounded staleness, training drives the
//! loss down and the result lands close to the fully synchronous (BSP)
//! solution; the bound degrades gracefully as `s` grows.
//!
//! We use a *linear* model (Wide&Deep with no hidden layer collapses to
//! logistic regression over embeddings), the closest practical analogue
//! of the theorem's smooth objective, so these checks are not confounded
//! by deep-net nonconvexity.

use het::prelude::*;

fn run(s: u64, iters: u64, lr: f32) -> TrainReport {
    let dataset = CtrDataset::new(CtrConfig::tiny(91));
    let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: s })
        .with_cache(0.6, PolicyKind::light_lfu());
    config.max_iterations = iters;
    config.eval_every = iters / 4;
    config.lr = lr;
    // Linear model: dims chain [in, 1] — logistic regression.
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[]));
    trainer.run()
}

#[test]
fn loss_decreases_monotonically_in_expectation() {
    let report = run(10, 2_000, 0.05);
    let losses: Vec<f64> = report.curve.iter().map(|p| p.train_loss).collect();
    assert!(losses.len() >= 3);
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "training loss must fall: {losses:?}"
    );
    // No catastrophic divergence anywhere along the curve.
    assert!(
        losses.iter().all(|l| l.is_finite() && *l < 2.0),
        "{losses:?}"
    );
}

#[test]
fn bounded_staleness_lands_near_the_bsp_solution() {
    // Theorem 1's practical content: for bounded s the stale run reaches
    // (near) the same stationary quality as s=0.
    let synchronous = run(0, 2_000, 0.05);
    let stale = run(10, 2_000, 0.05);
    assert!(
        (synchronous.final_metric - stale.final_metric).abs() < 0.03,
        "s=10 final {:.4} should be near s=0 final {:.4}",
        stale.final_metric,
        synchronous.final_metric
    );
}

#[test]
fn error_grows_with_staleness() {
    // The theorem's learning-rate bound shrinks as s grows (η ≲ 1/s);
    // at a fixed η the achieved quality must therefore be monotonically
    // (weakly) worse in s, in the large-s limit clearly so.
    let s0 = run(0, 1_200, 0.05);
    let s_huge = run(u64::MAX, 1_200, 0.05);
    assert!(
        s_huge.final_metric <= s0.final_metric + 0.01,
        "unbounded staleness ({:.4}) must not beat synchronous ({:.4})",
        s_huge.final_metric,
        s0.final_metric
    );
}

#[test]
fn smaller_learning_rate_tolerates_more_staleness() {
    // Theorem 1 trades η against s. At a large s, halving η should not
    // hurt final quality much (and must remain stable), whereas the
    // larger η is the riskier configuration.
    let large_lr = run(100, 2_000, 0.1);
    let small_lr = run(100, 2_000, 0.02);
    assert!(small_lr.final_metric.is_finite() && small_lr.final_metric > 0.5);
    assert!(large_lr.final_metric.is_finite());
    // Stability: the small-η run's loss curve never explodes (the
    // theorem guarantees convergence for small enough η at any bounded
    // s; it does not promise the small η wins within a fixed horizon).
    assert!(small_lr
        .curve
        .iter()
        .all(|p| p.train_loss.is_finite() && p.train_loss < 2.0));
}
