//! Reproducibility: the entire simulation — training math, clock
//! algebra, byte counters, convergence curves, fault schedules — is a
//! deterministic function of the seed. Checked as a full matrix:
//! sync mode × {clean, faulted} × seeds, comparing entire reports.

use het::json::ToJson;
use het::prelude::*;

fn run(seed: u64, preset: SystemPreset, faults: FaultConfig) -> TrainReport {
    let dataset = CtrDataset::new(CtrConfig::tiny(seed));
    let mut config = TrainerConfig::tiny(preset);
    config.seed = seed;
    config.max_iterations = 240;
    config.faults = faults;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    trainer.run()
}

/// A fault schedule dense enough to exercise crashes, failover, and
/// stragglers inside a 240-iteration tiny run. The horizon is sized
/// from a clean run of the same cell so every event lands in-run.
fn fault_spec(horizon: SimDuration) -> FaultConfig {
    let mut cfg = FaultConfig::disabled();
    cfg.enabled = true;
    cfg.checkpoint_every = 20;
    cfg.spec.worker_crashes = 2;
    cfg.spec.shard_outages = 1;
    cfg.spec.stragglers = 1;
    cfg.spec.message_drop_prob = 0.01;
    cfg.spec.horizon = horizon;
    cfg
}

/// Two runs of the same configuration must produce JSON-identical
/// reports — every metric, counter, curve point, and fault event.
/// Checked across the full sync-mode matrix (BSP / SSP / ASP), clean
/// and faulted, under several seeds each.
#[test]
fn seed_matrix_identical_reports() {
    let presets: [(SystemPreset, &str); 3] = [
        (SystemPreset::HetCache { staleness: 10 }, "bsp-cached"),
        (SystemPreset::Ssp { staleness: 2 }, "ssp"),
        (SystemPreset::HetPs, "asp"),
    ];
    for (preset, label) in presets {
        for seed in [3u64, 7, 9] {
            let clean_a = run(seed, preset, FaultConfig::disabled());
            let clean_b = run(seed, preset, FaultConfig::disabled());
            // The JSON fingerprint covers the whole report: one
            // diverging byte anywhere fails the matrix cell.
            assert_eq!(
                clean_a.to_json().encode(),
                clean_b.to_json().encode(),
                "{label} seed {seed} clean: reports diverged"
            );

            let horizon = SimDuration::from_secs_f64(clean_a.total_sim_time.as_secs_f64() * 0.8);
            let faulted_a = run(seed, preset, fault_spec(horizon));
            let faulted_b = run(seed, preset, fault_spec(horizon));
            assert_eq!(
                faulted_a.to_json().encode(),
                faulted_b.to_json().encode(),
                "{label} seed {seed} faulted: reports diverged"
            );
            assert!(
                faulted_a.faults.worker_crashes > 0 || faulted_a.faults.shard_failovers > 0,
                "{label} seed {seed}: fault schedule never fired — matrix \
                 cell is not actually exercising the faulted path"
            );
            // Faults must actually perturb the run, or the faulted
            // half of the matrix degenerates into the clean half.
            assert_ne!(
                clean_a.to_json().encode(),
                faulted_a.to_json().encode(),
                "{label} seed {seed}: faulted run identical to clean run"
            );
        }
    }
}

/// The same matrix with the lookahead prefetcher on (depth 4): the
/// prefetch plane, the extra process on the runtime, and its fault
/// cancellation paths are all deterministic functions of the seed too.
#[test]
fn prefetch_seed_matrix_identical_reports() {
    let run_prefetch = |seed: u64, sync: SyncMode, faults: FaultConfig| -> TrainReport {
        let dataset = CtrDataset::new(CtrConfig::tiny(seed));
        let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        config.system.sync = sync;
        config.seed = seed;
        config.max_iterations = 240;
        config.lookahead_depth = 4;
        config.faults = faults;
        let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
        trainer.run()
    };
    let modes: [(SyncMode, &str); 3] = [
        (SyncMode::Bsp, "bsp-prefetch"),
        (SyncMode::Asp, "asp-prefetch"),
        (SyncMode::Ssp { staleness: 2 }, "ssp-prefetch"),
    ];
    for (sync, label) in modes {
        for seed in [3u64, 7] {
            let clean_a = run_prefetch(seed, sync, FaultConfig::disabled());
            let clean_b = run_prefetch(seed, sync, FaultConfig::disabled());
            assert_eq!(
                clean_a.to_json().encode(),
                clean_b.to_json().encode(),
                "{label} seed {seed} clean: reports diverged"
            );
            assert!(
                clean_a.prefetch.is_some(),
                "{label} seed {seed}: prefetcher never engaged"
            );

            let horizon = SimDuration::from_secs_f64(clean_a.total_sim_time.as_secs_f64() * 0.8);
            let faulted_a = run_prefetch(seed, sync, fault_spec(horizon));
            let faulted_b = run_prefetch(seed, sync, fault_spec(horizon));
            assert_eq!(
                faulted_a.to_json().encode(),
                faulted_b.to_json().encode(),
                "{label} seed {seed} faulted: reports diverged"
            );
            assert!(
                faulted_a.faults.worker_crashes > 0 || faulted_a.faults.shard_failovers > 0,
                "{label} seed {seed}: fault schedule never fired"
            );
            assert_ne!(
                clean_a.to_json().encode(),
                faulted_a.to_json().encode(),
                "{label} seed {seed}: faulted run identical to clean run"
            );
        }
    }
}

/// The eviction-policy zoo joins the matrix: for each new policy
/// (SLRU, LFUDA, GDSF, and the adaptive meta-policy), same seed ⇒
/// byte-identical report JSON *and* byte-identical trace, clean and
/// faulted. Trace identity is the stronger claim for the adaptive
/// policy — its `policy_switch` events (switch points, replayed
/// resident sets, skew estimates) must replay exactly.
#[test]
fn policy_zoo_seed_matrix_identical_reports_and_traces() {
    let run_policy = |seed: u64, kind: PolicyKind, faults: FaultConfig| -> (TrainReport, String) {
        let dataset = CtrDataset::new(CtrConfig::tiny(seed));
        let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        config = config.with_cache(0.05, kind);
        config.seed = seed;
        config.max_iterations = 240;
        config.faults = faults;
        het::trace::start(Vec::new());
        let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
        let report = trainer.run();
        (report, het::trace::finish().to_jsonl())
    };
    let zoo: [(PolicyKind, &str); 4] = [
        (PolicyKind::Slru, "slru"),
        (PolicyKind::Lfuda, "lfuda"),
        (PolicyKind::Gdsf, "gdsf"),
        (PolicyKind::Adaptive { window: 32 }, "adaptive"),
    ];
    for (kind, label) in zoo {
        for seed in [3u64, 7] {
            let (clean_a, trace_a) = run_policy(seed, kind, FaultConfig::disabled());
            let (clean_b, trace_b) = run_policy(seed, kind, FaultConfig::disabled());
            assert_eq!(
                clean_a.to_json().encode(),
                clean_b.to_json().encode(),
                "{label} seed {seed} clean: reports diverged"
            );
            assert_eq!(
                trace_a, trace_b,
                "{label} seed {seed} clean: traces diverged"
            );

            let horizon = SimDuration::from_secs_f64(clean_a.total_sim_time.as_secs_f64() * 0.8);
            let (faulted_a, ftrace_a) = run_policy(seed, kind, fault_spec(horizon));
            let (faulted_b, ftrace_b) = run_policy(seed, kind, fault_spec(horizon));
            assert_eq!(
                faulted_a.to_json().encode(),
                faulted_b.to_json().encode(),
                "{label} seed {seed} faulted: reports diverged"
            );
            assert_eq!(
                ftrace_a, ftrace_b,
                "{label} seed {seed} faulted: traces diverged"
            );
            assert!(
                faulted_a.faults.worker_crashes > 0 || faulted_a.faults.shard_failovers > 0,
                "{label} seed {seed}: fault schedule never fired"
            );
            assert_ne!(
                clean_a.to_json().encode(),
                faulted_a.to_json().encode(),
                "{label} seed {seed}: faulted run identical to clean run"
            );
        }
    }
}

/// The tiered memory/disk store joins the matrix: with a hot tier
/// small enough to force demotion to the cold log (and modelled disk
/// time flowing into leg latency), same seed ⇒ byte-identical report
/// JSON *and* byte-identical trace, clean and faulted. The faulted
/// half covers checkpoint/failover over a store whose rows live
/// partly in cold pages.
#[test]
fn tiered_store_seed_matrix_identical_reports_and_traces() {
    let run_tiered = |seed: u64, hot: usize, faults: FaultConfig| -> (TrainReport, String) {
        let dataset = CtrDataset::new(CtrConfig::tiny(seed));
        let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        config.seed = seed;
        config.max_iterations = 240;
        config.store = StoreSpec::Tiered(TieredConfig::new(hot));
        config.faults = faults;
        het::trace::start(Vec::new());
        let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
        let report = trainer.run();
        (report, het::trace::finish().to_jsonl())
    };
    for (hot, label) in [(16usize, "tiered-16"), (256, "tiered-256")] {
        for seed in [3u64, 7] {
            let (clean_a, trace_a) = run_tiered(seed, hot, FaultConfig::disabled());
            let (clean_b, trace_b) = run_tiered(seed, hot, FaultConfig::disabled());
            assert_eq!(
                clean_a.to_json().encode(),
                clean_b.to_json().encode(),
                "{label} seed {seed} clean: reports diverged"
            );
            assert_eq!(
                trace_a, trace_b,
                "{label} seed {seed} clean: traces diverged"
            );
            let store = clean_a
                .store
                .as_ref()
                .expect("tiered run must report store accounting");
            // The 256-row tier holds the tiny run's whole key space —
            // that cell checks that an oversized budget degenerates to
            // flat-store behaviour; only the 16-row cell must spill.
            if hot == 16 {
                assert!(
                    store.stats.demotions > 0,
                    "{label} seed {seed}: hot tier never demoted — the cell \
                     is not actually exercising the cold log"
                );
            }
            assert!(
                store.resident_rows <= store.total_rows,
                "{label} seed {seed}: more resident than stored rows"
            );

            let horizon = SimDuration::from_secs_f64(clean_a.total_sim_time.as_secs_f64() * 0.8);
            let (faulted_a, ftrace_a) = run_tiered(seed, hot, fault_spec(horizon));
            let (faulted_b, ftrace_b) = run_tiered(seed, hot, fault_spec(horizon));
            assert_eq!(
                faulted_a.to_json().encode(),
                faulted_b.to_json().encode(),
                "{label} seed {seed} faulted: reports diverged"
            );
            assert_eq!(
                ftrace_a, ftrace_b,
                "{label} seed {seed} faulted: traces diverged"
            );
            assert!(
                faulted_a.faults.worker_crashes > 0 || faulted_a.faults.shard_failovers > 0,
                "{label} seed {seed}: fault schedule never fired"
            );
            assert_ne!(
                clean_a.to_json().encode(),
                faulted_a.to_json().encode(),
                "{label} seed {seed}: faulted run identical to clean run"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(
        1,
        SystemPreset::HetCache { staleness: 10 },
        FaultConfig::disabled(),
    );
    let b = run(
        2,
        SystemPreset::HetCache { staleness: 10 },
        FaultConfig::disabled(),
    );
    // Different data & init ⇒ different learning trajectory.
    assert_ne!(a.final_metric, b.final_metric);
}

/// The serving subsystem obeys the same contract: same seed ⇒
/// byte-identical `ServeReport` JSON, clean and under a fault schedule.
/// (The serve *trace* byte-identity lives in `tests/serving.rs`.)
#[test]
fn serve_seed_matrix_identical_reports() {
    let serve = |seed: u64, faults: FaultConfig| -> ServeReport {
        let mut cfg = ServeConfig::tiny(seed);
        cfg.faults = faults;
        ServeSim::new(cfg, |rng| WideDeep::new(rng, 4, 8, &[16])).run()
    };
    let faults = || {
        let mut cfg = FaultConfig::disabled();
        cfg.enabled = true;
        cfg.spec.worker_crashes = 1;
        cfg.spec.shard_outages = 1;
        cfg.spec.restart_delay = SimDuration::from_millis(2);
        cfg.spec.failover_delay = SimDuration::from_millis(4);
        cfg.spec.horizon = SimDuration::from_millis(40);
        cfg
    };
    for seed in [3u64, 7] {
        let clean_a = serve(seed, FaultConfig::disabled());
        let clean_b = serve(seed, FaultConfig::disabled());
        assert_eq!(
            clean_a.to_json().encode(),
            clean_b.to_json().encode(),
            "serve seed {seed} clean: reports diverged"
        );
        let faulted_a = serve(seed, faults());
        let faulted_b = serve(seed, faults());
        assert_eq!(
            faulted_a.to_json().encode(),
            faulted_b.to_json().encode(),
            "serve seed {seed} faulted: reports diverged"
        );
        assert_ne!(
            clean_a.to_json().encode(),
            faulted_a.to_json().encode(),
            "serve seed {seed}: faulted run identical to clean run"
        );
    }
}

/// Co-scheduled training + serving on one cluster runtime obeys the
/// same contract: same seed ⇒ byte-identical combined report JSON *and*
/// byte-identical trace, clean and under a cluster-wide fault plan —
/// and the shared trace's counters reconcile with *both* jobs' reports
/// (the cache counters split across the trainer's write-back caches and
/// the fleet's read-only caches must sum exactly).
#[test]
fn colocated_seed_matrix_identical_reports_and_traces() {
    let colocate = |seed: u64, faults: FaultConfig| -> (ColocatedReport, String) {
        let mut serve_cfg = ServeConfig::tiny(seed);
        serve_cfg.pretrain_updates = 200;
        let mut train_cfg = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        train_cfg.seed = seed;
        train_cfg.max_iterations = 120;
        train_cfg.faults = faults;
        let dataset = CtrDataset::new(CtrConfig::tiny(seed));
        let trainer = Trainer::with_shared_members(
            train_cfg,
            dataset,
            |rng| WideDeep::new(rng, 4, 8, &[16]),
            serve_cfg.n_replicas,
        );
        het::trace::start(vec![(
            "kind".to_string(),
            het::json::Json::Str("colocate".to_string()),
        )]);
        let report = run_colocated(trainer, serve_cfg, |rng| WideDeep::new(rng, 4, 8, &[16]));
        let log = het::trace::finish();

        // Counter ↔ report reconciliation across both jobs: the serve
        // counters belong to the fleet alone, while the cache counters
        // aggregate every cache client on the shared runtime.
        assert_eq!(log.counter("serve", "requests"), report.serve.requests);
        assert_eq!(log.counter("serve", "batches"), report.serve.batches);
        assert_eq!(
            log.counter("cache", "hits"),
            report.train.cache.hits + report.serve.cache.hits,
            "seed {seed}: cache hits don't split across trainer + fleet"
        );
        assert_eq!(
            log.counter("cache", "misses"),
            report.train.cache.misses + report.serve.cache.misses
        );
        assert_eq!(
            log.counter("cache", "invalidations"),
            report.train.cache.invalidations + report.serve.cache.invalidations
        );
        (report, log.to_jsonl())
    };
    let faults = |horizon: SimDuration| {
        let mut cfg = FaultConfig::disabled();
        cfg.enabled = true;
        cfg.checkpoint_every = 20;
        cfg.spec.worker_crashes = 2;
        cfg.spec.shard_outages = 1;
        cfg.spec.restart_delay = SimDuration::from_millis(2);
        cfg.spec.failover_delay = SimDuration::from_millis(4);
        cfg.spec.horizon = horizon;
        cfg
    };
    for seed in [3u64, 7] {
        let (clean_a, trace_a) = colocate(seed, FaultConfig::disabled());
        let (clean_b, trace_b) = colocate(seed, FaultConfig::disabled());
        assert_eq!(
            clean_a.to_json().encode(),
            clean_b.to_json().encode(),
            "colocate seed {seed} clean: combined reports diverged"
        );
        assert_eq!(
            trace_a, trace_b,
            "colocate seed {seed} clean: traces diverged"
        );

        let horizon = SimDuration::from_secs_f64(clean_a.train.total_sim_time.as_secs_f64() * 0.8);
        let (faulted_a, ftrace_a) = colocate(seed, faults(horizon));
        let (faulted_b, ftrace_b) = colocate(seed, faults(horizon));
        assert_eq!(
            faulted_a.to_json().encode(),
            faulted_b.to_json().encode(),
            "colocate seed {seed} faulted: combined reports diverged"
        );
        assert_eq!(
            ftrace_a, ftrace_b,
            "colocate seed {seed} faulted: traces diverged"
        );
        assert!(
            faulted_a.train.faults.worker_crashes + faulted_a.serve.faults.worker_crashes > 0,
            "colocate seed {seed}: the cluster-wide crash plan never fired"
        );
        assert_ne!(
            clean_a.to_json().encode(),
            faulted_a.to_json().encode(),
            "colocate seed {seed}: faulted run identical to clean run"
        );
    }
}

#[test]
fn dataset_generation_is_stable_across_instances() {
    let a = CtrDataset::new(CtrConfig::criteo_like(3));
    let b = CtrDataset::new(CtrConfig::criteo_like(3));
    for i in 0..50 {
        assert_eq!(a.example(i, false), b.example(i, false));
        assert_eq!(a.example(i, true), b.example(i, true));
    }
    let ga = Graph::generate(GraphConfig::tiny(3));
    let gb = Graph::generate(GraphConfig::tiny(3));
    for v in 0..ga.n_nodes() as u32 {
        assert_eq!(ga.neighbors_of(v), gb.neighbors_of(v));
    }
}

#[test]
fn server_lazy_init_is_order_independent() {
    let a = PsServer::new(PsConfig {
        dim: 8,
        n_shards: 4,
        lr: 0.1,
        seed: 5,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    let b = PsServer::new(PsConfig {
        dim: 8,
        n_shards: 4,
        lr: 0.1,
        seed: 5,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    // Touch in opposite orders.
    for k in 0..100u64 {
        let _ = a.pull(k);
    }
    for k in (0..100u64).rev() {
        let _ = b.pull(k);
    }
    for k in 0..100u64 {
        assert_eq!(a.pull(k).vector, b.pull(k).vector);
    }
}
