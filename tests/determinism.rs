//! Reproducibility: the entire simulation — training math, clock
//! algebra, byte counters, convergence curves — is a deterministic
//! function of the seed.

use het::prelude::*;

fn run(seed: u64, preset: SystemPreset) -> TrainReport {
    let dataset = CtrDataset::new(CtrConfig::tiny(seed));
    let mut config = TrainerConfig::tiny(preset);
    config.seed = seed;
    config.max_iterations = 240;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    trainer.run()
}

#[test]
fn identical_seeds_identical_reports_bsp() {
    let a = run(7, SystemPreset::HetCache { staleness: 10 });
    let b = run(7, SystemPreset::HetCache { staleness: 10 });
    assert_eq!(a.total_sim_time, b.total_sim_time);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(
        a.curve.iter().map(|p| p.metric).collect::<Vec<_>>(),
        b.curve.iter().map(|p| p.metric).collect::<Vec<_>>()
    );
}

#[test]
fn identical_seeds_identical_reports_asp() {
    // The asynchronous event queue must also be deterministic.
    let a = run(9, SystemPreset::HetPs);
    let b = run(9, SystemPreset::HetPs);
    assert_eq!(a.total_sim_time, b.total_sim_time);
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.final_metric, b.final_metric);
}

#[test]
fn different_seeds_differ() {
    let a = run(1, SystemPreset::HetCache { staleness: 10 });
    let b = run(2, SystemPreset::HetCache { staleness: 10 });
    // Different data & init ⇒ different learning trajectory.
    assert_ne!(a.final_metric, b.final_metric);
}

#[test]
fn dataset_generation_is_stable_across_instances() {
    let a = CtrDataset::new(CtrConfig::criteo_like(3));
    let b = CtrDataset::new(CtrConfig::criteo_like(3));
    for i in 0..50 {
        assert_eq!(a.example(i, false), b.example(i, false));
        assert_eq!(a.example(i, true), b.example(i, true));
    }
    let ga = Graph::generate(GraphConfig::tiny(3));
    let gb = Graph::generate(GraphConfig::tiny(3));
    for v in 0..ga.n_nodes() as u32 {
        assert_eq!(ga.neighbors_of(v), gb.neighbors_of(v));
    }
}

#[test]
fn server_lazy_init_is_order_independent() {
    let a = PsServer::new(PsConfig {
        dim: 8,
        n_shards: 4,
        lr: 0.1,
        seed: 5,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    let b = PsServer::new(PsConfig {
        dim: 8,
        n_shards: 4,
        lr: 0.1,
        seed: 5,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    // Touch in opposite orders.
    for k in 0..100u64 {
        let _ = a.pull(k);
    }
    for k in (0..100u64).rev() {
        let _ = b.pull(k);
    }
    for k in 0..100u64 {
        assert_eq!(a.pull(k).vector, b.pull(k).vector);
    }
}
