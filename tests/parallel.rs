//! Cross-backend equivalence: the threaded execution backend against
//! the discrete-event simulator (DESIGN.md §3.13).
//!
//! The simulator is the correctness oracle; real threads are the
//! performance backend. The contract, checked here:
//!
//! * **BSP is bit-identical** — a threaded BSP run must end at exactly
//!   the sim's final state: dense parameters, server embedding rows
//!   (values *and* clocks), and eval metric, compared to the last bit.
//!   The turnstiles serialize server-visible effects into the sim's
//!   worker order, so there is no tolerance window to hide behind.
//! * **ASP/SSP replay oracle-clean** — asynchronous threaded schedules
//!   are timing-dependent, so instead of state equality the merged
//!   per-thread trace is replayed through `het-oracle`, which checks
//!   the paper's invariants (clock-bound reads, staleness windows,
//!   iteration accounting) against the run that actually happened.
//! * **The threaded backend is additive** — sim runs remain
//!   byte-identical with the threaded machinery compiled in and used;
//!   sim traces still carry no thread ids (the golden fixtures in
//!   `tests/golden/` stay byte-stable, re-checked here from the
//!   determinism side).

use het::json::ToJson;
use het::prelude::*;
use het_oracle::{check_replay, OracleSpec};
use het_trace::replay::ReplayLog;

fn config_of(preset: SystemPreset, seed: u64, iters: u64) -> TrainerConfig {
    let mut config = TrainerConfig::tiny(preset);
    config.seed = seed;
    config.max_iterations = iters;
    config
}

fn trainer_of(config: TrainerConfig, seed: u64) -> Trainer<WideDeep, CtrDataset> {
    Trainer::new(config, CtrDataset::new(CtrConfig::tiny(seed)), |rng| {
        WideDeep::new(rng, 4, 8, &[16])
    })
}

fn sorted_rows(server: &PsServer) -> Vec<CheckpointRow> {
    let mut rows = server.export_rows();
    rows.sort_by_key(|r| r.key);
    rows
}

/// BSP: the threaded backend must reproduce the simulator's final
/// state exactly — dense parameters, eval metric, convergence curve,
/// and every server row's vector and clock.
#[test]
fn bsp_threads_match_sim_bit_for_bit() {
    for (threads, seed) in [(2usize, 3u64), (4, 7)] {
        let mut config = config_of(SystemPreset::HetCache { staleness: 10 }, seed, 240);
        config.cluster = ClusterSpec::cluster_a(threads, 1);

        let mut sim = trainer_of(config.clone(), seed);
        let sim_report = sim.run();
        let sim_dense = sim.export_dense_params();

        let mut thr = trainer_of(config, seed);
        let report = thr.run_threaded(None).expect("threaded BSP run");

        assert_eq!(report.backend, format!("threads:{threads}"));
        assert_eq!(report.total_iterations, sim_report.total_iterations);
        assert_eq!(
            report.final_metric, sim_report.final_metric,
            "threads:{threads} seed {seed}: final metric diverged from sim"
        );
        assert_eq!(
            report.final_dense, sim_dense,
            "threads:{threads} seed {seed}: dense params diverged from sim"
        );
        // Curve timestamps are wall-clock on the threaded backend, so
        // only the learning content is comparable — and it must match
        // exactly, point for point.
        assert_eq!(report.curve.len(), sim_report.curve.len());
        for (a, b) in report.curve.iter().zip(&sim_report.curve) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(
                a.metric, b.metric,
                "threads:{threads} seed {seed}: curve metric diverged at iter {}",
                a.iteration
            );
            assert_eq!(
                a.train_loss, b.train_loss,
                "threads:{threads} seed {seed}: curve loss diverged at iter {}",
                a.iteration
            );
        }
        let sim_rows = sorted_rows(sim.server());
        let thr_rows = sorted_rows(thr.server());
        assert_eq!(sim_rows.len(), thr_rows.len());
        for (a, b) in sim_rows.iter().zip(&thr_rows) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.clock, b.clock,
                "threads:{threads} seed {seed}: clock of key {} diverged",
                a.key
            );
            assert_eq!(
                a.vector, b.vector,
                "threads:{threads} seed {seed}: embedding row {} diverged",
                a.key
            );
        }
    }
}

/// ASP and SSP threaded runs are nondeterministic by design, so each
/// run's own merged trace is replayed through the model-based oracle:
/// whatever interleaving the OS produced must still satisfy the
/// paper's consistency invariants.
#[test]
fn async_threaded_traces_replay_oracle_clean() {
    // Cache-less ASP/SSP plus cached ASP — the latter is the cell
    // where staleness windows (CheckValid) actually exist.
    let cells: [(SystemPreset, Option<SyncMode>, &str); 3] = [
        (SystemPreset::HetPs, None, "asp"),
        (SystemPreset::Ssp { staleness: 2 }, None, "ssp"),
        (
            SystemPreset::HetCache { staleness: 10 },
            Some(SyncMode::Asp),
            "asp-cached",
        ),
    ];
    for (preset, sync, label) in cells {
        let mut config = config_of(preset, 11, 160);
        config.cluster = ClusterSpec::cluster_a(3, 1);
        if let Some(sync) = sync {
            config.system.sync = sync;
        }
        let mut trainer = trainer_of(config, 11);
        let meta = vec![(
            "kind".to_string(),
            het::json::Json::Str(format!("parallel-{label}")),
        )];
        let report = trainer
            .run_threaded(Some(meta))
            .unwrap_or_else(|e| panic!("{label}: threaded run failed: {e}"));
        let log = report
            .trace
            .as_ref()
            .expect("threaded run collects a trace");

        // The merged stream must also pass the schema validator's
        // per-thread monotonicity rules before the oracle sees it.
        het_trace::schema::validate_jsonl(&log.to_jsonl())
            .unwrap_or_else(|e| panic!("{label}: bad trace: {e}"));

        let replay = ReplayLog::from(log);
        let oracle = check_replay(&replay, &OracleSpec::of(trainer.config()))
            .unwrap_or_else(|v| panic!("{label}: oracle violation: [{}] {}", v.check, v.message));
        assert_eq!(
            oracle.computes, report.total_iterations,
            "{label}: oracle saw a different iteration count than the report"
        );
        if label == "asp-cached" {
            assert!(
                oracle.window_reads > 0,
                "{label}: oracle never checked a staleness window — the cell \
                 is not exercising the consistency path"
            );
        }
    }
}

/// Threaded BSP is itself deterministic (the turnstiles leave no
/// scheduling freedom with observable effects): two identical runs end
/// in the same state, bit for bit.
#[test]
fn threaded_bsp_is_deterministic() {
    let run = || {
        let mut config = config_of(SystemPreset::HetCache { staleness: 10 }, 5, 160);
        config.cluster = ClusterSpec::cluster_a(4, 1);
        let mut trainer = trainer_of(config, 5);
        let report = trainer.run_threaded(None).expect("threaded run");
        (report.final_dense.clone(), report.final_metric)
    };
    let (dense_a, metric_a) = run();
    let (dense_b, metric_b) = run();
    assert_eq!(dense_a, dense_b, "threaded BSP dense params diverged");
    assert_eq!(metric_a, metric_b, "threaded BSP metric diverged");
}

/// The sim-only features stay sim-only, loudly: fault injection and
/// lookahead prefetch are rejected with errors that point back at
/// `--backend sim` instead of silently degrading.
#[test]
fn threaded_backend_rejects_sim_only_features() {
    let mut faulted = config_of(SystemPreset::HetCache { staleness: 10 }, 3, 60);
    faulted.faults.enabled = true;
    faulted.faults.spec.worker_crashes = 1;
    faulted.faults.spec.horizon = SimDuration::from_secs_f64(10.0);
    let err = trainer_of(faulted, 3).run_threaded(None).unwrap_err();
    assert!(err.contains("--backend sim"), "unhelpful error: {err}");

    let mut lookahead = config_of(SystemPreset::HetCache { staleness: 10 }, 3, 60);
    lookahead.lookahead_depth = 4;
    let err = trainer_of(lookahead, 3).run_threaded(None).unwrap_err();
    assert!(err.contains("--backend sim"), "unhelpful error: {err}");
}

/// The determinism-matrix cell for the backend seam: with the threaded
/// machinery in the build (and exercised moments earlier in this same
/// process), the simulator still produces byte-identical reports and
/// traces, and sim traces carry no `tid` field or wall-clock marker —
/// which is what keeps the golden fixtures of `tests/golden/`
/// byte-stable across this refactor.
#[test]
fn sim_backend_is_untouched_by_the_threaded_machinery() {
    let run_sim = |seed: u64| {
        het::trace::start(Vec::new());
        let mut trainer = trainer_of(
            config_of(SystemPreset::HetCache { staleness: 10 }, seed, 160),
            seed,
        );
        let report = trainer.run();
        (report, het::trace::finish())
    };
    // Interleave a threaded run to prove it leaves no residue in the
    // sim path (thread-local trace state, server globals, rng state).
    let (report_a, trace_a) = run_sim(9);
    let mut threaded = trainer_of(
        config_of(SystemPreset::HetCache { staleness: 10 }, 9, 80),
        9,
    );
    threaded.run_threaded(None).expect("threaded interleave");
    let (report_b, trace_b) = run_sim(9);

    assert_eq!(
        report_a.to_json().encode(),
        report_b.to_json().encode(),
        "a threaded run perturbed the sim backend"
    );
    assert_eq!(
        trace_a.to_jsonl(),
        trace_b.to_jsonl(),
        "a threaded run perturbed sim traces"
    );
    for ev in &trace_a.events {
        assert!(
            !ev.fields.iter().any(|(k, _)| *k == "tid"),
            "sim trace events must not carry thread ids"
        );
    }
    assert!(
        !trace_a.meta.iter().any(|(k, _)| k == "clock"),
        "sim traces must not be marked wall-clock"
    );
}
