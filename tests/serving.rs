//! The online-inference serving subsystem (`het-serve`).
//!
//! Contracts under test: (1) a serving run is a **deterministic**
//! function of its seed — byte-identical `ServeReport` JSON and
//! byte-identical serve trace, clean and fault-injected; (2) the
//! staleness window holds — serving concurrent with training never
//! admits a read outside `s`, checked via the `client/read_window`
//! events the oracle path already emits; (3) SpaceSaving warmup beats a
//! cold start on miss rate and tail latency; (4) p99 degrades
//! monotonically as cache capacity shrinks; (5) replica crashes
//! cold-restart and PS-shard outages degrade to stale serving while
//! every request is still answered; (6) serve trace counters reconcile
//! exactly with the report, and the committed golden serve fixture
//! stays current.
//!
//! Regenerate the serve fixture after an intentional instrumentation
//! change with:
//!
//! ```text
//! cargo test -p het --test serving -- --ignored regenerate
//! ```

use het::json::{Json, ToJson};
use het::prelude::*;
use het::serve::ServeSim;
use het::trace;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
const FIXTURE_SEED: u64 = 11;

/// Every test serves the same small Wide&Deep model; the factory seeds
/// identically across replicas inside `ServeSim`.
fn run(cfg: ServeConfig) -> ServeReport {
    let n_fields = cfg.n_fields;
    let dim = cfg.dim;
    ServeSim::new(cfg, move |rng| WideDeep::new(rng, n_fields, dim, &[16])).run()
}

fn traced_run(cfg: ServeConfig) -> (ServeReport, trace::TraceLog) {
    trace::start(vec![
        ("kind".to_string(), Json::Str("serve".to_string())),
        ("seed".to_string(), Json::UInt(cfg.seed)),
    ]);
    let report = run(cfg);
    (report, trace::finish())
}

/// A fault schedule with replica crashes and one shard outage, sized so
/// everything lands inside a tiny run (~50 ms of simulated time).
fn fault_spec() -> FaultConfig {
    let mut cfg = FaultConfig::disabled();
    cfg.enabled = true;
    cfg.spec.worker_crashes = 2;
    cfg.spec.shard_outages = 1;
    cfg.spec.restart_delay = SimDuration::from_millis(2);
    cfg.spec.failover_delay = SimDuration::from_millis(4);
    cfg.spec.horizon = SimDuration::from_millis(40);
    cfg
}

#[test]
fn same_seed_gives_byte_identical_report_and_trace() {
    for faults in [FaultConfig::disabled(), fault_spec()] {
        let faulted = faults.enabled;
        let mut cfg = ServeConfig::tiny(13);
        cfg.faults = faults;
        let (report_a, log_a) = traced_run(cfg.clone());
        let (report_b, log_b) = traced_run(cfg);
        assert_eq!(
            report_a.to_json().encode(),
            report_b.to_json().encode(),
            "faulted={faulted}: reports diverged"
        );
        let (jsonl_a, jsonl_b) = (log_a.to_jsonl(), log_b.to_jsonl());
        assert!(!log_a.events.is_empty(), "trace has no events");
        assert_eq!(jsonl_a, jsonl_b, "faulted={faulted}: traces diverged");
        trace::schema::validate_jsonl(&jsonl_a).expect("serve trace is schema-valid");
        if faulted {
            assert!(
                report_a.faults.worker_crashes > 0,
                "fault schedule never fired a crash"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(ServeConfig::tiny(1));
    let b = run(ServeConfig::tiny(2));
    assert_ne!(
        a.to_json().encode(),
        b.to_json().encode(),
        "different seeds must give different runs"
    );
}

/// The acceptance bound: serving co-scheduled with a *live* trainer on
/// one cluster runtime never admits a read outside the staleness window
/// `s`. Every gradient the trainer pushes advances the per-key server
/// clocks the replicas' reads are bounded by; every serve-side
/// `client/read_window` event reports the worst lag (condition 1) and
/// clock gap (condition 2) among the reads it validated — both must
/// respect the serve config's `s` even while training mutates the table
/// underneath.
#[test]
fn concurrent_training_never_breaks_the_staleness_window() {
    let mut serve_cfg = ServeConfig::tiny(21);
    serve_cfg.staleness = 4;
    serve_cfg.pretrain_updates = 300;
    let train_cfg = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 8 });
    let dataset = CtrDataset::new(CtrConfig::tiny(21));
    let trainer = Trainer::with_shared_members(
        train_cfg,
        dataset,
        |rng| WideDeep::new(rng, 4, 8, &[16]),
        serve_cfg.n_replicas,
    );
    let n_workers = trainer.n_workers() as u64;
    let (n_fields, dim) = (serve_cfg.n_fields, serve_cfg.dim);
    trace::start(vec![(
        "kind".to_string(),
        Json::Str("colocate".to_string()),
    )]);
    let report = run_colocated(trainer, serve_cfg.clone(), move |rng| {
        WideDeep::new(rng, n_fields, dim, &[16])
    });
    let log = trace::finish();
    assert!(report.train.total_iterations > 0, "trainer never ran");
    assert_eq!(
        report.serve.requests, serve_cfg.n_requests as u64,
        "co-scheduling dropped requests"
    );
    assert!(
        report.serve.cache.invalidations > 0,
        "live training never invalidated a cached serving entry — the window is not being exercised"
    );
    // The serving fleet owns members n_workers.. on the shared runtime;
    // its read_window events are the ones bounded by the serve `s` (the
    // trainer's own cached reads answer to its wider window).
    let windows: Vec<_> = log
        .events_of("client")
        .filter(|e| e.name == "read_window" && e.worker.is_some_and(|w| w >= n_workers))
        .collect();
    assert!(
        !windows.is_empty(),
        "no serve-side read_window events emitted"
    );
    let field = |e: &trace::TraceEvent, key: &str| -> u64 {
        match e.fields.iter().find(|(k, _)| *k == key) {
            Some((_, trace::Value::UInt(v))) => *v,
            other => panic!("read_window field {key} missing or mistyped: {other:?}"),
        }
    };
    let mut validated_total = 0u64;
    for w in &windows {
        let max_lag = field(w, "max_lag");
        let max_gap = field(w, "max_gap");
        validated_total += field(w, "validated");
        assert!(
            max_gap <= serve_cfg.staleness,
            "read-side clock gap {max_gap} exceeds staleness {}",
            serve_cfg.staleness
        );
        // A read-only serving cache never advances c_c, so its lag is
        // identically zero — the whole window is available to the gap.
        assert_eq!(max_lag, 0, "serving cache advanced a local clock");
    }
    assert!(validated_total > 0, "no read was ever clock-validated");
}

#[test]
fn spacesaving_warmup_beats_cold_start() {
    let mut cold_cfg = ServeConfig::tiny(33);
    cold_cfg.pretrain_updates = 300;
    let mut warm_cfg = cold_cfg.clone();
    warm_cfg.warmup_requests = 2_000;
    let cold = run(cold_cfg);
    let warm = run(warm_cfg);
    assert!(warm.warmed_keys > 0, "warmup installed nothing");
    assert_eq!(cold.requests, warm.requests, "same schedule both runs");
    assert!(
        warm.cache.miss_rate() < cold.cache.miss_rate(),
        "warmed miss rate {:.4} not below cold {:.4}",
        warm.cache.miss_rate(),
        cold.cache.miss_rate()
    );
    assert!(
        warm.latency_p99_ns <= cold.latency_p99_ns,
        "warmed p99 {} worse than cold {}",
        warm.latency_p99_ns,
        cold.latency_p99_ns
    );
}

#[test]
fn p99_degrades_monotonically_as_cache_shrinks() {
    let mut last: Option<(usize, ServeReport)> = None;
    for capacity in [400usize, 120, 40, 12] {
        let mut cfg = ServeConfig::tiny(45);
        cfg.cache_capacity = capacity;
        cfg.warmup_requests = 1_000;
        let report = run(cfg);
        if let Some((prev_cap, prev)) = &last {
            assert!(
                report.cache.miss_rate() > prev.cache.miss_rate(),
                "capacity {capacity} miss rate {:.4} not above capacity {prev_cap}'s {:.4}",
                report.cache.miss_rate(),
                prev.cache.miss_rate()
            );
            assert!(
                report.latency_p99_ns >= prev.latency_p99_ns,
                "capacity {capacity} p99 {} better than larger capacity {prev_cap}'s {}",
                report.latency_p99_ns,
                prev.latency_p99_ns
            );
        }
        last = Some((capacity, report));
    }
}

#[test]
fn replica_crashes_cold_restart_and_still_serve_everything() {
    let mut cfg = ServeConfig::tiny(57);
    cfg.faults = fault_spec();
    cfg.faults.spec.shard_outages = 0;
    let clean = {
        let mut c = cfg.clone();
        c.faults = FaultConfig::disabled();
        run(c)
    };
    let faulted = run(cfg.clone());
    assert!(faulted.faults.worker_crashes > 0, "no crash fired");
    assert!(
        faulted.faults.keys_lost > 0,
        "a crash must drop the cache cold"
    );
    assert_eq!(
        faulted.requests, cfg.n_requests as u64,
        "every request must still be served"
    );
    let crashes: u64 = faulted.replicas.iter().map(|r| r.crashes).sum();
    assert_eq!(crashes, faulted.faults.worker_crashes);
    assert_ne!(
        clean.to_json().encode(),
        faulted.to_json().encode(),
        "crashes left no mark on the run"
    );
}

#[test]
fn shard_outage_degrades_to_stale_serving() {
    let mut cfg = ServeConfig::tiny(69);
    cfg.faults = fault_spec();
    cfg.faults.spec.worker_crashes = 0;
    cfg.warmup_requests = 2_000; // resident hot set → degradable reads
    cfg.pretrain_updates = 300;
    let report = run(cfg.clone());
    assert!(report.faults.shard_failovers > 0, "no outage fired");
    assert!(
        report.faults.degraded_reads > 0,
        "outage never produced a gracefully degraded (stale) read"
    );
    assert_eq!(
        report.requests, cfg.n_requests as u64,
        "outage must not drop requests"
    );
}

fn fixture_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::tiny(FIXTURE_SEED);
    cfg.n_requests = 200;
    cfg.pretrain_updates = 200;
    cfg.warmup_requests = 500;
    cfg.faults = fault_spec();
    cfg
}

/// Serve counters must reconcile exactly with the `ServeReport` — the
/// trace and the report are two views of one run.
#[test]
fn serve_counters_reconcile_with_the_report() {
    let (report, log) = traced_run(fixture_cfg());
    assert_eq!(log.counter("serve", "requests"), report.requests);
    assert_eq!(log.counter("serve", "batches"), report.batches);
    assert_eq!(log.counter("serve", "queue_wait_ns"), report.queue_wait_ns);
    assert_eq!(
        log.counter("serve", "degraded_reads"),
        report.faults.degraded_reads
    );
    assert_eq!(
        log.counter("serve", "warmed_keys"),
        report.warmed_keys * report.n_replicas as u64
    );
    // Cache counters: serving is the only cache user in this run.
    assert_eq!(log.counter("cache", "hits"), report.cache.hits);
    assert_eq!(log.counter("cache", "misses"), report.cache.misses);
    assert_eq!(
        log.counter("cache", "invalidations"),
        report.cache.invalidations
    );
    assert_eq!(
        log.counter("cache", "capacity_evictions"),
        report.cache.capacity_evictions
    );
    // Per-replica attribution: each replica's requests counter equals
    // its row in the report.
    for r in &report.replicas {
        assert_eq!(
            log.counter_at("serve", "requests", Some(r.replica as u64)),
            r.requests,
            "replica {} counter mismatch",
            r.replica
        );
    }
    // Crash events appear once per crash.
    let crash_events = log
        .events_of("serve")
        .filter(|e| e.name == "replica_crash")
        .count() as u64;
    assert_eq!(crash_events, report.faults.worker_crashes);
}

#[test]
fn committed_serve_fixture_validates_and_is_current() {
    let path = format!("{GOLDEN_DIR}/serve_cached.trace.jsonl");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
    let summary = trace::schema::validate_jsonl(&committed).expect("serve fixture is schema-valid");
    for comp in ["serve", "cache", "client", "ps"] {
        assert!(
            summary.components.contains(comp),
            "fixture missing component {comp}: {:?}",
            summary.components
        );
    }
    for kind in [
        "serve.request",
        "serve.batch",
        "serve.lookup",
        "serve.infer",
    ] {
        assert!(
            summary.event_kinds.contains(kind),
            "fixture missing event kind {kind}"
        );
    }
    let derived = traced_run(fixture_cfg()).1.to_jsonl();
    assert_eq!(
        committed, derived,
        "serve fixture is stale — regenerate with \
         `cargo test -p het --test serving -- --ignored regenerate`"
    );
}

/// Rewrites `tests/golden/serve_cached.trace.jsonl`. Run manually after
/// an intentional instrumentation change:
/// `cargo test -p het --test serving -- --ignored regenerate`.
#[test]
#[ignore = "rewrites the committed golden serve fixture"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(GOLDEN_DIR).expect("create tests/golden");
    let jsonl = traced_run(fixture_cfg()).1.to_jsonl();
    std::fs::write(format!("{GOLDEN_DIR}/serve_cached.trace.jsonl"), jsonl).unwrap();
}
