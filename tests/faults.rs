//! Fault injection and recovery, end to end.
//!
//! The contract under test: (1) fault injection is **inert when off** —
//! a disabled or zero-event schedule reproduces the fault-free run
//! bit-for-bit; (2) it is **deterministic when on** — the same seed
//! replays every crash, failover, straggler window, and retry
//! identically; (3) a faulted run still completes and reports each
//! fault/recovery event in the train report.

use het::prelude::*;

fn run(seed: u64, faults: FaultConfig) -> TrainReport {
    let dataset = CtrDataset::new(CtrConfig::tiny(seed));
    let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
    config.seed = seed;
    config.max_iterations = 240;
    config.faults = faults;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    trainer.run()
}

fn assert_bit_identical(a: &TrainReport, b: &TrainReport) {
    assert_eq!(a.total_sim_time, b.total_sim_time);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(
        a.curve
            .iter()
            .map(|p| (p.iteration, p.metric, p.train_loss))
            .collect::<Vec<_>>(),
        b.curve
            .iter()
            .map(|p| (p.iteration, p.metric, p.train_loss))
            .collect::<Vec<_>>()
    );
}

/// A schedule with every fault class, with the horizon placed inside
/// `sim_time` so each event fires (and its recovery window completes)
/// before the run ends.
fn full_spec(sim_time: SimTime) -> FaultConfig {
    let mut cfg = FaultConfig::disabled();
    cfg.enabled = true;
    cfg.spec.worker_crashes = 1;
    cfg.spec.shard_outages = 1;
    cfg.spec.stragglers = 1;
    cfg.spec.link_degradations = 1;
    cfg.spec.message_drop_prob = 0.02;
    cfg.spec.horizon = SimDuration::from_secs_f64(sim_time.as_secs_f64() * 0.8);
    cfg
}

#[test]
fn disabled_and_zero_schedule_match_the_fault_free_run_exactly() {
    let baseline = run(11, FaultConfig::disabled());

    // enabled = true but an all-zero spec: the plan is empty, and the
    // empty plan must take byte-for-byte the fault-free code path.
    let mut zero = FaultConfig::disabled();
    zero.enabled = true;
    let zeroed = run(11, zero);

    assert_bit_identical(&baseline, &zeroed);
    assert_eq!(zeroed.faults, FaultStats::default());
    assert!(zeroed.fault_events.is_empty());
}

#[test]
fn same_seed_replays_the_faulted_run_bit_identically() {
    let baseline = run(13, FaultConfig::disabled());
    let faults = full_spec(baseline.total_sim_time);

    let a = run(13, faults.clone());
    let b = run(13, faults);

    assert_bit_identical(&a, &b);
    assert_eq!(a.faults, b.faults);
    assert_eq!(
        a.fault_events
            .iter()
            .map(|e| (e.at, e.description.clone()))
            .collect::<Vec<_>>(),
        b.fault_events
            .iter()
            .map(|e| (e.at, e.description.clone()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn faulted_run_completes_and_reports_every_event() {
    let baseline = run(17, FaultConfig::disabled());
    let report = run(17, full_spec(baseline.total_sim_time));

    // The run still completes its full iteration budget.
    assert_eq!(report.total_iterations, 240);
    assert!(report.final_metric.is_finite());

    // Every scheduled fault class fired and was recorded.
    assert_eq!(report.faults.worker_crashes, 1, "{:?}", report.fault_events);
    assert_eq!(
        report.faults.shard_failovers, 1,
        "{:?}",
        report.fault_events
    );
    assert!(report.faults.straggler_slow_iters >= 1);
    assert!(
        report.faults.checkpoints >= 1,
        "initial checkpoint always taken"
    );
    assert_eq!(
        report.fault_events.len(),
        2,
        "one crash + one failover recorded"
    );

    // Faults cost simulated time, never save it.
    assert!(report.total_sim_time >= baseline.total_sim_time);
}

#[test]
fn different_fault_seeds_produce_different_schedules() {
    let base_a = run(19, FaultConfig::disabled());
    let a = run(19, full_spec(base_a.total_sim_time));
    let base_b = run(23, FaultConfig::disabled());
    let b = run(23, full_spec(base_b.total_sim_time));
    assert_ne!(
        a.fault_events.iter().map(|e| e.at).collect::<Vec<_>>(),
        b.fault_events.iter().map(|e| e.at).collect::<Vec<_>>()
    );
}

#[test]
fn message_drops_charge_retries_and_extra_bytes() {
    let baseline = run(29, FaultConfig::disabled());
    let mut cfg = FaultConfig::disabled();
    cfg.enabled = true;
    cfg.spec.message_drop_prob = 0.5;
    let dropped = run(29, cfg);

    assert!(dropped.faults.retries > 0);
    assert!(
        dropped.comm.total_bytes() > baseline.comm.total_bytes(),
        "retransmissions must be charged bytes: {} !> {}",
        dropped.comm.total_bytes(),
        baseline.comm.total_bytes()
    );
    assert!(dropped.total_sim_time > baseline.total_sim_time);
}

#[test]
fn shard_failover_restores_from_checkpoint_and_accounts_losses() {
    // Drive the recovery path directly for exact accounting: push known
    // updates, checkpoint, push more, then fail the shard.
    let server = PsServer::new(PsConfig {
        dim: 2,
        n_shards: 2,
        lr: 1.0,
        seed: 3,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    let key = 0u64;
    let shard = server.shard_index_of(key);
    server.push_inc(key, &[1.0, 1.0]);

    let mut store = ShardCheckpointStore::new(2, 2);
    store.checkpoint_all(&server).unwrap();
    let at_checkpoint = server.pull(key);

    server.push_inc(key, &[1.0, 1.0]);
    server.push_inc(key, &[1.0, 1.0]);

    let outcome = store.fail_and_restore(&server, shard).unwrap();
    assert_eq!(
        outcome.lost_updates, 2,
        "two post-checkpoint clock ticks rolled back"
    );
    let restored = server.pull(key);
    assert_eq!(restored.vector, at_checkpoint.vector);
    assert_eq!(restored.clock, at_checkpoint.clock);
}
