//! Consistency integration tests: Lemma 1 clock bounds under real
//! training, read-my-updates, and the SSP comparison — plus
//! property-based tests of the clock algebra under arbitrary operation
//! interleavings.

use het::core::consistency::{max_divergence, ConsistencyBound};
use het::core::HetClient;
use het::prelude::*;
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};

fn new_client(staleness: u64, dim: usize) -> HetClient {
    HetClient::new(256, staleness, PolicyKind::Lru, dim, 0.1)
}

fn new_server(dim: usize) -> PsServer {
    PsServer::new(PsConfig {
        dim,
        n_shards: 2,
        lr: 0.1,
        seed: 77,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    })
}

fn one_grad(dim: usize, key: Key) -> SparseGrads {
    let mut g = SparseGrads::new(dim);
    g.accumulate(key, &vec![0.1; dim]);
    g
}

#[test]
fn read_my_updates_holds() {
    // Paper §3.2: "the data read by a client contains all its own
    // updates" even though the server hasn't seen them.
    let dim = 4;
    let server = new_server(dim);
    let net = ClusterSpec::cluster_a(2, 1).collectives();
    let mut stats = CommStats::new();
    let mut client = new_client(100, dim);

    let (before, _) = client.read(&[9], &server, &net, &mut stats, None);
    let v0 = before.get(9).to_vec();
    client.write(&one_grad(dim, 9), &server, &net, &mut stats, None);
    let (after, _) = client.read(&[9], &server, &net, &mut stats, None);
    let v1 = after.get(9).to_vec();
    for (a, b) in v0.iter().zip(&v1) {
        assert!(
            (a - 0.1 * 0.1 - b).abs() < 1e-6,
            "local read must reflect the update"
        );
    }
    // Server still has the original.
    assert_eq!(server.pull(9).vector, v0);
}

#[test]
fn lemma1_bound_holds_during_real_training() {
    // Run a cached training and sample divergence after each round via
    // the public accessors.
    let s = 5;
    let dataset = CtrDataset::new(CtrConfig::tiny(41));
    let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: s });
    config.max_iterations = 400;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    let _ = trainer.run();
    let clients: Vec<&HetClient> = (0..trainer.n_workers())
        .filter_map(|w| trainer.worker_client(w))
        .collect();
    assert_eq!(clients.len(), 4);
    assert!(
        ConsistencyBound::cache_clock(s).holds_any_time(max_divergence(&clients)),
        "divergence {} exceeds any-time bound 2s+2={}",
        max_divergence(&clients),
        2 * s + 2
    );
}

#[test]
fn unbounded_staleness_violates_tight_bound_eventually() {
    // With effectively infinite s the clocks are free to diverge far
    // beyond what small-s HET permits — the cache never invalidates.
    let dim = 2;
    let server = new_server(dim);
    let net = ClusterSpec::cluster_a(2, 1).collectives();
    let mut stats = CommStats::new();
    let mut fast = new_client(u64::MAX, dim);
    let mut slow = new_client(u64::MAX, dim);
    let _ = fast.read(&[1], &server, &net, &mut stats, None);
    let _ = slow.read(&[1], &server, &net, &mut stats, None);
    for _ in 0..50 {
        fast.write(&one_grad(dim, 1), &server, &net, &mut stats, None);
    }
    assert_eq!(max_divergence(&[&fast, &slow]), 50);
    assert!(!ConsistencyBound::cache_clock(5).holds_any_time(max_divergence(&[&fast, &slow])));
}

/// Under any interleaving of reads/writes by two workers on one key,
/// validated clock state never exceeds the any-time bound, provided
/// both workers validate (read) regularly.
#[test]
fn prop_clock_bounds_under_interleavings() {
    let mut rng = StdRng::seed_from_u64(0xC0_0151);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..120);
        let ops: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.gen_range(0usize..2), rng.gen_range(0usize..3)))
            .collect();
        let s = rng.gen_range(0u64..6);
        let dim = 2;
        let server = new_server(dim);
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut clients = [new_client(s, dim), new_client(s, dim)];
        let key: Key = 3;

        for (who, what) in ops {
            let c = &mut clients[who];
            match what {
                // read (validates)
                0 | 2 => {
                    let _ = c.read(&[key], &server, &net, &mut stats, None);
                }
                // write — protocol requires the key resident, so read
                // first if it is not.
                _ => {
                    if !c.cache().find(key) {
                        let _ = c.read(&[key], &server, &net, &mut stats, None);
                    }
                    c.write(&one_grad(dim, key), &server, &net, &mut stats, None);
                }
            }
            // After every step both sides re-validate, then the tight
            // Lemma 1 bound must hold.
            let _ = clients[0].read(&[key], &server, &net, &mut stats, None);
            let _ = clients[1].read(&[key], &server, &net, &mut stats, None);
            let refs: Vec<&HetClient> = clients.iter().collect();
            assert!(
                ConsistencyBound::cache_clock(s).holds_any_time(max_divergence(&refs)),
                "divergence {} > 2s+2 with s={}",
                max_divergence(&refs),
                s
            );
        }
    }
}

/// Per-sync-mode bounds under real traced training, checked by the
/// sequential reference oracle: BSP workers agree exactly at every
/// barrier (bound 0), SSP spread never exceeds s (+1 in flight), ASP
/// is unbounded but each worker's progress stays monotone.
#[test]
fn per_sync_mode_bounds_hold_in_training() {
    use het_oracle::{check_replay, OracleSpec};
    for (preset, label) in [
        (SystemPreset::HetHybrid, "bsp"),
        (SystemPreset::Ssp { staleness: 2 }, "ssp"),
        (SystemPreset::HetPs, "asp"),
        (SystemPreset::HetCache { staleness: 10 }, "bsp-cached"),
    ] {
        let mut config = TrainerConfig::tiny(preset);
        config.max_iterations = 120;
        let dataset = CtrDataset::new(CtrConfig::tiny(17));
        het::trace::start(vec![]);
        let mut trainer = Trainer::new(config.clone(), dataset, |rng| {
            WideDeep::new(rng, 4, 8, &[16])
        });
        let _ = trainer.run();
        let log = het::trace::finish();
        let replay = het::trace::replay::ReplayLog::from(&log);
        if let Err(v) = check_replay(&replay, &OracleSpec::of(&config)) {
            panic!("{label}: oracle violation [{}]: {}", v.check, v.message);
        }
    }
}

/// The server clock never regresses, and equals the max local clock
/// pushed so far.
#[test]
fn prop_server_clock_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC0_0152);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..40);
        let pushes: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..50)).collect();
        let server = new_server(1);
        let mut high = 0u64;
        for c in pushes {
            server.push_with_clock(1, &[0.0], c);
            high = high.max(c);
            assert_eq!(server.clock_of(1), high);
        }
    }
}
