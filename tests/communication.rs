//! Communication-volume integration tests: the headline claims of the
//! paper expressed as assertions over the byte counters.

use het::prelude::*;

fn criteo_small(seed: u64) -> CtrDataset {
    let mut cfg = CtrConfig::criteo_like(seed);
    cfg.n_train = 8_000;
    cfg.n_test = 1_000;
    // Keep the paper's regime: embedding table ≫ one batch's unique keys
    // (the 10% cache must comfortably hold the hot set).
    cfg.vocab_sizes = Some(het::data::ctr::scaled_criteo_vocabs(26 * 2_000));
    CtrDataset::new(cfg)
}

fn run(preset: SystemPreset, iters: u64) -> TrainReport {
    let mut config = TrainerConfig::cluster_a(preset);
    config.dim = 32;
    config.max_iterations = iters;
    config.eval_every = iters; // only the final eval
    let mut trainer = Trainer::new(config, criteo_small(5), |rng| {
        WideDeep::new(rng, 26, 32, &[32])
    });
    trainer.run()
}

#[test]
fn cache_cuts_embedding_communication_substantially() {
    let hybrid = run(SystemPreset::HetHybrid, 400);
    let cached = run(SystemPreset::HetCache { staleness: 100 }, 400);
    let reduction = cached.comm.embedding_reduction_vs(&hybrid.comm);
    assert!(
        reduction > 0.5,
        "expected a large communication reduction, got {:.1}% (cached {} vs hybrid {})",
        100.0 * reduction,
        cached.comm.embedding_bytes(),
        hybrid.comm.embedding_bytes()
    );
}

#[test]
fn larger_staleness_reduces_communication() {
    let s10 = run(SystemPreset::HetCache { staleness: 10 }, 400);
    let s100 = run(SystemPreset::HetCache { staleness: 100 }, 400);
    assert!(
        s100.comm.embedding_bytes() <= s10.comm.embedding_bytes(),
        "s=100 ({}) should communicate no more than s=10 ({})",
        s100.comm.embedding_bytes(),
        s10.comm.embedding_bytes()
    );
    assert!(s100.total_sim_time <= s10.total_sim_time);
}

#[test]
fn clock_messages_are_a_small_fraction_of_saved_traffic() {
    // The validation traffic the cache adds must be far smaller than the
    // fetch traffic it removes — otherwise CheckValid wouldn't pay off.
    let hybrid = run(SystemPreset::HetHybrid, 300);
    let cached = run(SystemPreset::HetCache { staleness: 100 }, 300);
    let clock_bytes = cached.comm.bytes(CommCategory::ClockSync);
    let saved_fetch = hybrid
        .comm
        .bytes(CommCategory::EmbeddingFetch)
        .saturating_sub(cached.comm.bytes(CommCategory::EmbeddingFetch));
    assert!(
        clock_bytes < saved_fetch,
        "clock traffic {clock_bytes} should be below saved fetch traffic {saved_fetch}"
    );
}

#[test]
fn dense_traffic_is_identical_between_hybrid_and_cached() {
    // The cache only touches the sparse path.
    let hybrid = run(SystemPreset::HetHybrid, 200);
    let cached = run(SystemPreset::HetCache { staleness: 100 }, 200);
    assert_eq!(
        hybrid.comm.bytes(CommCategory::DenseAllReduce),
        cached.comm.bytes(CommCategory::DenseAllReduce)
    );
}

#[test]
fn ps_systems_pay_dense_ps_traffic_hybrids_do_not() {
    let ps = run(SystemPreset::HetPs, 200);
    let hybrid = run(SystemPreset::HetHybrid, 200);
    assert!(ps.comm.bytes(CommCategory::DensePs) > 0);
    assert_eq!(ps.comm.bytes(CommCategory::DenseAllReduce), 0);
    assert!(hybrid.comm.bytes(CommCategory::DenseAllReduce) > 0);
    assert_eq!(hybrid.comm.bytes(CommCategory::DensePs), 0);
}

#[test]
fn ten_gbe_shrinks_the_gap_but_not_the_bytes() {
    // Paper Fig. 7b: on 10 GbE the speedups shrink (time) while the
    // byte counts are bandwidth-independent.
    let run_on = |cluster: ClusterSpec| {
        let mut config = TrainerConfig::cluster_a(SystemPreset::HetHybrid);
        config.cluster = cluster;
        config.dim = 32;
        config.max_iterations = 200;
        config.eval_every = 200;
        let mut t = Trainer::new(config, criteo_small(9), |rng| {
            WideDeep::new(rng, 26, 32, &[32])
        });
        t.run()
    };
    let slow = run_on(ClusterSpec::cluster_a(8, 1));
    let fast = run_on(ClusterSpec::cluster_b(8, 1));
    assert_eq!(slow.comm.embedding_bytes(), fast.comm.embedding_bytes());
    assert!(fast.total_sim_time < slow.total_sim_time);
}

#[test]
fn het_ar_rides_the_fast_worker_link() {
    // Paper §5.1: HET AR beats HET PS on the 1 GbE cluster because
    // AllReduce/AllGather run over PCIe while the PS path crosses
    // Ethernet.
    let ar = run(SystemPreset::HetAr, 200);
    let ps = run(SystemPreset::HetPs, 200);
    assert!(
        ar.total_sim_time < ps.total_sim_time,
        "HET AR {:?} should beat HET PS {:?} on 1 GbE",
        ar.total_sim_time,
        ps.total_sim_time
    );
}
