//! End-to-end integration: every model × every system trains to
//! completion through the full stack (data → cache/PS → trainer), and
//! the cache-enabled system actually learns.

use het::prelude::*;

fn ctr_dataset(seed: u64) -> CtrDataset {
    CtrDataset::new(CtrConfig::tiny(seed))
}

fn tiny_config(preset: SystemPreset) -> TrainerConfig {
    TrainerConfig::tiny(preset)
}

#[test]
fn wdl_trains_on_every_system() {
    for preset in [
        SystemPreset::TfPs,
        SystemPreset::TfParallax,
        SystemPreset::HetPs,
        SystemPreset::HetAr,
        SystemPreset::HetHybrid,
        SystemPreset::HetCache { staleness: 10 },
    ] {
        let mut trainer = Trainer::new(tiny_config(preset), ctr_dataset(1), |rng| {
            WideDeep::new(rng, 4, 8, &[16])
        });
        let report = trainer.run();
        assert!(report.total_iterations >= 200, "{preset:?} stopped early");
        assert!(report.final_metric > 0.3, "{preset:?} metric degenerate");
    }
}

#[test]
fn dfm_and_dcn_train_under_het_cache() {
    let dfm = {
        let mut t = Trainer::new(
            tiny_config(SystemPreset::HetCache { staleness: 10 }),
            ctr_dataset(2),
            |rng| DeepFm::new(rng, 4, 8, &[16]),
        );
        t.run()
    };
    assert!(dfm.final_metric.is_finite());
    assert!(dfm.cache.lookups() > 0);

    let dcn = {
        let mut t = Trainer::new(
            tiny_config(SystemPreset::HetCache { staleness: 10 }),
            ctr_dataset(3),
            |rng| DeepCross::new(rng, 4, 8, 2, &[16]),
        );
        t.run()
    };
    assert!(dcn.final_metric.is_finite());
}

#[test]
fn xdeepfm_trains_under_het_cache() {
    use het::models::XDeepFm;
    let mut config = tiny_config(SystemPreset::HetCache { staleness: 10 });
    config.max_iterations = 200;
    let mut trainer = Trainer::new(config, ctr_dataset(4), |rng| {
        XDeepFm::new(rng, 4, 8, &[4, 4], &[16])
    });
    let report = trainer.run();
    assert!(report.final_metric.is_finite());
    assert!(report.cache.lookups() > 0);
}

#[test]
fn graphsage_trains_under_het_cache() {
    let graph = Graph::generate(GraphConfig::tiny(5));
    let classes = graph.config().n_classes;
    let dataset = GnnDataset::new(graph, NeighborSampler::new(4, 3));
    let mut trainer = Trainer::new(
        tiny_config(SystemPreset::HetCache { staleness: 10 }),
        dataset,
        move |rng| GraphSage::new(rng, 8, 16, classes),
    );
    let report = trainer.run();
    assert!(report.final_metric >= 0.0 && report.final_metric <= 1.0);
    assert!(report.cache.hits > 0, "hub nodes should hit the cache");
}

#[test]
fn het_cache_learns_above_chance() {
    // A longer run on the tiny workload must push AUC clearly above 0.5.
    let mut config = tiny_config(SystemPreset::HetCache { staleness: 10 })
        .with_cache(0.6, PolicyKind::light_lfu());
    config.max_iterations = 4_000;
    config.eval_every = 1_000;
    config.lr = 0.1;
    let mut trainer = Trainer::new(config, ctr_dataset(11), |rng| {
        WideDeep::new(rng, 4, 8, &[16])
    });
    let report = trainer.run();
    assert!(
        report.final_metric > 0.6,
        "AUC {} should be well above chance",
        report.final_metric
    );
    // And the curve should be broadly increasing: last point >= first.
    let first = report.curve.first().unwrap().metric;
    let last = report.curve.last().unwrap().metric;
    assert!(last >= first - 0.02, "curve regressed: {first} -> {last}");
}

#[test]
fn bsp_oracle_equivalence_at_zero_staleness() {
    // With one worker and s = 0, the cached system computes exactly the
    // same updates as the cache-less hybrid; updates merely *reach the
    // server later* (they sit in the cache until eviction/flush). After
    // the end-of-training flush, server state — and therefore the final
    // metric — must be identical. Mid-run server snapshots are allowed
    // to lag: that is precisely the stale-write semantics.
    let run = |preset: SystemPreset| {
        let mut config = TrainerConfig::tiny(preset);
        config.cluster = ClusterSpec::cluster_a(1, 1);
        config.max_iterations = 60;
        config.eval_every = 20;
        let mut t = Trainer::new(config, ctr_dataset(21), |rng| {
            WideDeep::new(rng, 4, 8, &[16])
        });
        let report = t.run();
        (report, t)
    };
    let (cached_report, cached) = run(SystemPreset::HetCache { staleness: 0 });
    let (hybrid_report, hybrid) = run(SystemPreset::HetHybrid);
    assert!(
        (cached_report.final_metric - hybrid_report.final_metric).abs() < 1e-9,
        "post-flush final metric must match: {} vs {}",
        cached_report.final_metric,
        hybrid_report.final_metric
    );
    // Post-flush, every touched embedding is bit-identical on the server.
    for key in 0..cached.dataset().total_keys() as Key {
        match (cached.server().snapshot(key), hybrid.server().snapshot(key)) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-5, "key {key}: {x} vs {y}");
                }
            }
            (None, None) => {}
            (a, b) => panic!("key {key} materialised on one server only: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn statistical_efficiency_shared_across_backbones() {
    // Paper §5.1: HET PS and TF PS share statistical efficiency — same
    // metric per iteration — and differ only in time. Same for the
    // hybrid pair.
    let run = |preset: SystemPreset| {
        let mut config = TrainerConfig::tiny(preset);
        config.max_iterations = 120;
        config.eval_every = 40;
        let mut t = Trainer::new(config, ctr_dataset(31), |rng| {
            WideDeep::new(rng, 4, 8, &[16])
        });
        t.run()
    };
    let het_hybrid = run(SystemPreset::HetHybrid);
    let tf_parallax = run(SystemPreset::TfParallax);
    let a: Vec<f64> = het_hybrid.curve.iter().map(|p| p.metric).collect();
    let b: Vec<f64> = tf_parallax.curve.iter().map(|p| p.metric).collect();
    assert_eq!(a, b, "same per-iteration trajectory expected");
    assert!(
        het_hybrid.total_sim_time < tf_parallax.total_sim_time,
        "HET backbone must be faster in simulated time"
    );
}
