//! Checkpoint/restore integration: train, export the embedding table,
//! restore it into a fresh server, and verify the deployed model is
//! bit-identical.

use het::prelude::*;
use het::ps::{read_checkpoint, restore_server, write_checkpoint};

fn trained_trainer() -> Trainer<WideDeep, CtrDataset> {
    let dataset = CtrDataset::new(CtrConfig::tiny(71));
    let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
    config.max_iterations = 240;
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    let _ = trainer.run();
    trainer
}

#[test]
fn export_restore_preserves_every_row() {
    let trainer = trained_trainer();
    let server = trainer.server();
    let rows = server.export_rows();
    assert!(
        !rows.is_empty(),
        "training must have materialised embeddings"
    );

    // Round-trip through the wire format.
    let mut buf = Vec::new();
    write_checkpoint(&mut buf, 8, &rows).expect("write");
    let (dim, restored_rows) = read_checkpoint(buf.as_slice()).expect("read");
    assert_eq!(dim, 8);
    assert_eq!(restored_rows.len(), rows.len());

    let restored = restore_server(*server.config(), dim, &restored_rows);
    for row in &rows {
        let a = server.pull(row.key);
        let b = restored.pull(row.key);
        assert_eq!(a.vector, b.vector, "key {} vector drifted", row.key);
        assert_eq!(a.clock, b.clock, "key {} clock drifted", row.key);
    }
}

#[test]
fn restored_model_predicts_identically() {
    let trainer = trained_trainer();
    let rows = trainer.server().export_rows();
    let restored = restore_server(*trainer.server().config(), 8, &rows);

    let ds = trainer.dataset();
    let batch = ds.test_batch(0, 64);
    let mut store_a = EmbeddingStore::new(8);
    let mut store_b = EmbeddingStore::new(8);
    for k in batch.unique_keys() {
        store_a.insert(k, trainer.server().pull(k).vector);
        store_b.insert(k, restored.pull(k).vector);
    }
    let model = trainer.worker_model(0);
    let a = model.evaluate(&batch, &store_a);
    let b = model.evaluate(&batch, &store_b);
    assert_eq!(
        a.scores, b.scores,
        "restored table must give identical predictions"
    );
}

#[test]
fn checkpoint_file_round_trips_on_disk() {
    let trainer = trained_trainer();
    let rows = trainer.server().export_rows();
    let path = std::env::temp_dir().join(format!("het-ckpt-test-{}.txt", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create");
        write_checkpoint(file, 8, &rows).expect("write");
    }
    let file = std::fs::File::open(&path).expect("open");
    let (dim, restored) = read_checkpoint(file).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(dim, 8);
    assert_eq!(restored, rows);
}
