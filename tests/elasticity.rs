//! Self-healing elasticity: failure detection, supervised recovery,
//! autoscaling, and live PS resharding (`het-serve::supervise`/`chaos`).
//!
//! Contracts under test: (1) a supervised run *detects* replica crashes
//! from heartbeat silence (never from the fault plan), respawns them
//! with sketch-warmed caches, and still serves every request — and two
//! same-seed runs are byte-identical in report JSON and trace; (2) a
//! live PS-shard split driven mid-serving conserves every served
//! result bit-for-bit while actually moving keys; (3) the autoscaler
//! scales up into a flash crowd and back down after it, without
//! flapping on steady load; (4) the full chaos campaign — 10× flash +
//! replica crashes + concurrent shard outage + live split over a live
//! trainer — passes its SLO/RTO gate deterministically and replays
//! clean through the consistency oracle.

use het::json::{Json, ToJson};
use het::prelude::*;
use het::serve::supervise::ReshardPlan;
use het::serve::ServeSim;
use het::trace;
use het_oracle::{check_replay, OracleSpec};

fn run_with_plan(cfg: ServeConfig, plan: FaultPlan) -> ServeReport {
    let (n_fields, dim) = (cfg.n_fields, cfg.dim);
    ServeSim::with_plan(cfg, plan, move |rng| {
        WideDeep::new(rng, n_fields, dim, &[16])
    })
    .run()
}

fn traced_run_with_plan(cfg: ServeConfig, plan: FaultPlan) -> (ServeReport, trace::TraceLog) {
    trace::start(vec![(
        "kind".to_string(),
        Json::Str("elasticity".to_string()),
    )]);
    let report = run_with_plan(cfg, plan);
    (report, trace::finish())
}

/// One replica crash at 10 ms with an absurd scripted restart delay:
/// only *supervised* recovery can bring the replica back.
fn crash_plan() -> FaultPlan {
    FaultPlan::scripted(vec![FaultEvent::WorkerCrash {
        worker: 0,
        at: SimTime::ZERO + SimDuration::from_millis(10),
        restart_delay: SimDuration::from_secs_f64(3600.0),
    }])
}

fn supervised_cfg(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::tiny(seed);
    cfg.supervision.enabled = true;
    cfg.supervision.heartbeat_every = SimDuration::from_micros(250);
    cfg
}

#[test]
fn detected_crash_is_respawned_and_everything_is_served() {
    let (report, log) = traced_run_with_plan(supervised_cfg(91), crash_plan());
    assert_eq!(report.faults.worker_crashes, 1, "the crash must land");
    assert_eq!(
        report.detections, 1,
        "heartbeat silence must be detected exactly once"
    );
    assert_eq!(report.respawns, 1, "the detection must drive a respawn");
    assert_eq!(
        report.requests,
        ServeConfig::tiny(91).n_requests as u64,
        "supervised recovery must not drop requests"
    );
    // Detection is heartbeat-driven: the supervisor's own events tell
    // the story in order — detect, then respawn command.
    let sup: Vec<&str> = log.events_of("supervisor").map(|e| e.name).collect();
    assert!(sup.contains(&"detect_crash"), "no detect_crash event");
    assert!(sup.contains(&"respawn"), "no respawn command event");
    let respawn_events = log
        .events_of("serve")
        .filter(|e| e.name == "replica_respawn")
        .count();
    assert_eq!(respawn_events, 1, "fleet must apply exactly one respawn");
    // The respawned cache is warmed from the live popularity sketch.
    let warmed = log
        .events_of("serve")
        .filter(|e| e.name == "replica_respawn")
        .filter_map(
            |e| match e.fields.iter().find(|(k, _)| *k == "keys_warmed") {
                Some((_, trace::Value::UInt(v))) => Some(*v),
                _ => None,
            },
        )
        .next()
        .expect("replica_respawn carries keys_warmed");
    assert!(warmed > 0, "respawn warmed nothing from the sketch");
}

#[test]
fn supervised_recovery_is_byte_identical_across_runs() {
    let (report_a, log_a) = traced_run_with_plan(supervised_cfg(92), crash_plan());
    let (report_b, log_b) = traced_run_with_plan(supervised_cfg(92), crash_plan());
    assert_eq!(
        report_a.to_json().encode(),
        report_b.to_json().encode(),
        "same-seed supervised reports diverged"
    );
    assert_eq!(
        log_a.to_jsonl(),
        log_b.to_jsonl(),
        "same-seed supervised traces diverged"
    );
    trace::schema::validate_jsonl(&log_a.to_jsonl()).expect("supervised trace is schema-valid");
}

/// The cold-start gap supervised respawns left open: the respawned
/// cache is warmed from the *lifetime* popularity sketch, which lags a
/// drifting hot set — the replica comes back resident in yesterday's
/// keys and cold-misses the traffic it is about to serve. Drift-
/// triggered respawn prefetch (`supervision.drift_prefetch`) follows
/// the warmup with prefetch pulls for recently-hot keys it missed, so
/// the post-respawn tail must be no worse than warmup-only recovery.
#[test]
fn drift_prefetch_closes_the_post_respawn_cold_start_gap() {
    let run = |prefetch: bool| {
        let mut cfg = supervised_cfg(96);
        cfg.n_requests = 800;
        // Brisk hot-set drift: by the 10 ms crash the hot set has
        // rotated far from the distribution startup traffic taught the
        // lifetime sketch.
        cfg.drift_period = SimDuration::from_millis(2);
        cfg.drift_step = 40;
        cfg.supervision.drift_prefetch = prefetch;
        cfg.supervision.drift_window = SimDuration::from_millis(1);
        run_with_plan(cfg, crash_plan())
    };
    let warm_only = run(false);
    let prefetched = run(true);
    for (name, r) in [("warmup-only", &warm_only), ("prefetched", &prefetched)] {
        assert_eq!(r.requests, 800, "{name} run dropped requests");
        assert_eq!(r.respawns, 1, "{name} run must respawn exactly once");
    }
    assert_eq!(
        warm_only.drift_prefetched_keys, 0,
        "drift prefetch off must stay prefetch-silent"
    );
    assert_eq!(warm_only.cache.prefetch_installs, 0);
    assert!(
        prefetched.drift_prefetched_keys > 0,
        "drift prefetch never engaged"
    );
    assert_eq!(
        prefetched.cache.prefetch_installs, prefetched.drift_prefetched_keys,
        "every prefetch install must come from the drift path"
    );
    assert!(
        prefetched.cache.prefetch_hits > 0,
        "no prefetched key ever served a read"
    );
    assert!(
        prefetched.latency_p99_ns <= warm_only.latency_p99_ns,
        "post-respawn p99 with drift prefetch ({} ns) must not exceed warmup-only ({} ns)",
        prefetched.latency_p99_ns,
        warm_only.latency_p99_ns
    );
    // The effect concentrates on the crashed replica's own tail.
    assert!(
        prefetched.replicas[0].p99_ns <= warm_only.replicas[0].p99_ns,
        "crashed replica's p99 with drift prefetch ({} ns) must not exceed warmup-only ({} ns)",
        prefetched.replicas[0].p99_ns,
        warm_only.replicas[0].p99_ns
    );
    // Byte-determinism holds with the drift prefetcher on.
    let again = run(true);
    assert_eq!(
        prefetched.to_json().encode(),
        again.to_json().encode(),
        "same-seed drift-prefetch reports diverged"
    );
}

/// A live split moves real keys between shards mid-serving, yet every
/// served score is bit-identical to the unsplit run: resharding is
/// invisible to correctness, visible only to placement.
#[test]
fn live_shard_split_conserves_every_served_result() {
    let mut base_cfg = ServeConfig::tiny(93);
    base_cfg.pretrain_updates = 400;
    let mut split_cfg = base_cfg.clone();
    split_cfg.supervision.enabled = true;
    split_cfg.supervision.reshard = Some(ReshardPlan {
        at: SimTime::ZERO + SimDuration::from_millis(5),
        parent: 0,
        batch: 16,
        every: SimDuration::from_micros(100),
        salt: 0xC4A0_5717,
    });
    let base = run_with_plan(base_cfg, FaultPlan::none());
    let split = run_with_plan(split_cfg, FaultPlan::none());
    assert!(split.split_done, "the split never completed");
    assert!(split.migrated_keys > 0, "the split moved no keys");
    assert_eq!(base.requests, split.requests, "split dropped requests");
    assert_eq!(
        base.score_mean.to_bits(),
        split.score_mean.to_bits(),
        "resharding changed a served result: {} vs {}",
        base.score_mean,
        split.score_mean
    );
}

fn autoscaled_cfg(seed: u64, flash: bool) -> ServeConfig {
    let mut cfg = ServeConfig::tiny(seed);
    cfg.n_requests = 800;
    cfg.autoscale = AutoscaleConfig {
        enabled: true,
        min_replicas: 1,
        max_replicas: 4,
        evaluate_every: SimDuration::from_micros(500),
        queue_high: 6.0,
        queue_low: 0.5,
        cooldown: SimDuration::from_millis(4),
        warmup_delay: SimDuration::from_micros(300),
    };
    if flash {
        cfg.flash_at = Some(SimTime::ZERO + SimDuration::from_millis(20));
        cfg.flash_duration = SimDuration::from_millis(25);
        cfg.flash_factor = 10.0;
        cfg.flash_hot_keys = 64;
    }
    cfg
}

#[test]
fn autoscaler_grows_into_the_flash_and_drains_after() {
    let report = run_with_plan(autoscaled_cfg(94, true), FaultPlan::none());
    assert!(
        report.scale_ups >= 1,
        "a 10x flash crowd must provoke a scale-up"
    );
    assert!(
        report.scale_downs >= 1,
        "the pool must drain back down after the flash"
    );
    assert_eq!(report.requests, 800, "autoscaling must not drop requests");
    // Hysteresis + cooldown bound the action count — no flapping.
    assert!(
        report.scale_ups + report.scale_downs <= 10,
        "autoscaler flapped: {} ups + {} downs",
        report.scale_ups,
        report.scale_downs
    );
}

#[test]
fn autoscaler_holds_still_on_steady_load() {
    let report = run_with_plan(autoscaled_cfg(95, false), FaultPlan::none());
    assert_eq!(
        report.scale_ups, 0,
        "steady load inside the hysteresis band must not scale up"
    );
    assert!(
        report.scale_downs <= 1,
        "steady light load may shed at most the over-provisioned replica, saw {}",
        report.scale_downs
    );
    assert_eq!(report.requests, 800, "steady run dropped requests");
}

/// The acceptance scenario: 10× flash crowd + two replica crashes +
/// concurrent PS-shard outage + live shard split, over a live trainer
/// on one runtime. Deterministic, SLO/RTO-clean, oracle-clean.
#[test]
fn chaos_campaign_is_healthy_deterministic_and_oracle_clean() {
    let cfg = ChaosConfig::tiny(7);
    let run = |cfg: &ChaosConfig| {
        trace::start(vec![("kind".to_string(), Json::Str("chaos".to_string()))]);
        let report = run_chaos(cfg);
        (report, trace::finish())
    };
    let (report_a, log_a) = run(&cfg);
    let (report_b, log_b) = run(&cfg);
    assert_eq!(
        report_a.to_json().encode(),
        report_b.to_json().encode(),
        "same-seed chaos reports diverged"
    );
    assert_eq!(
        log_a.to_jsonl(),
        log_b.to_jsonl(),
        "same-seed chaos traces diverged"
    );
    trace::schema::validate_jsonl(&log_a.to_jsonl()).expect("chaos trace is schema-valid");

    report_a.assert_healthy();
    let s = &report_a.report.serve;
    assert_eq!(s.detections, 2, "both scripted crashes must be detected");
    assert!(s.scale_ups >= 1, "the flash must provoke scaling");
    assert!(
        s.migrated_keys > 0 && s.split_done,
        "the live split must complete mid-run"
    );
    assert!(
        report_a.report.train.total_iterations > 0,
        "the trainer must make progress through the chaos"
    );

    // The whole compound scenario still replays clean through the
    // model-based consistency oracle: clock bounds, gradient
    // conservation, push parity, cache windows.
    let spec = OracleSpec::of(&cfg.train_config());
    let replay = trace::replay::ReplayLog::from(&log_a);
    let oracle = check_replay(&replay, &spec).expect("oracle found a violation in the chaos run");
    assert!(oracle.computes > 0, "oracle never saw an iteration");
    assert!(oracle.window_reads > 0, "oracle never saw a read window");
}

/// The chaos gate holds across a small seed sweep (the CI campaign
/// runs a much larger one through `hetctl chaos --seeds`).
#[test]
fn chaos_campaign_passes_across_seeds() {
    for seed in [1, 2, 3] {
        let report = run_chaos(&ChaosConfig::tiny(seed));
        assert!(
            report.healthy(),
            "seed {seed} failed the chaos gate: slo_ok={} rto_ok={} recovered_ok={} split_ok={}",
            report.slo_ok,
            report.rto_ok,
            report.recovered_ok,
            report.split_ok
        );
    }
}
