//! Lookahead prefetching (§4.2's pre-fetching made exact by the
//! deterministic data cursor): the exact-lookahead invariant, the
//! dedup discipline, the prefetch ledger, comm/compute overlap
//! accounting, and depth-0 byte-identity with the legacy path.

use het::json::ToJson;
use het::prelude::*;
use std::collections::HashSet;

/// A cached system with the sync mode overridden (the HetCache preset
/// is BSP; ASP/SSP cells reuse its cache protocol under free-running
/// and bounded-staleness schedules).
fn cached_config(sync: SyncMode, depth: u64, seed: u64) -> TrainerConfig {
    let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
    config.system.sync = sync;
    config.seed = seed;
    config.max_iterations = 240;
    config.lookahead_depth = depth;
    config
}

fn trainer_for(config: TrainerConfig) -> Trainer<WideDeep, CtrDataset> {
    let seed = config.seed;
    Trainer::new(config, CtrDataset::new(CtrConfig::tiny(seed)), |rng| {
        WideDeep::new(rng, 4, 8, &[16])
    })
}

const SYNC_MODES: [(SyncMode, &str); 3] = [
    (SyncMode::Bsp, "bsp"),
    (SyncMode::Asp, "asp"),
    (SyncMode::Ssp { staleness: 2 }, "ssp"),
];

/// The tentpole invariant, checked over sync mode × depth ∈ {1,2,4,8}:
/// every planned key set is *exactly* the deduplicated key set the
/// worker reads `depth` batches later (recomputed on an independent
/// dataset instance, so the check rides only on cursor purity), the
/// plan partitions that set into issued / resident / in-flight with no
/// overlap and no double-planning, and the prefetch ledger closes.
#[test]
fn exact_lookahead_invariant_across_sync_and_depth() {
    for (sync, label) in SYNC_MODES {
        for depth in [1u64, 2, 4, 8] {
            let config = cached_config(sync, depth, 7);
            let batch_size = config.batch_size;
            let mut t = trainer_for(config);
            t.enable_prefetch_audit();
            let report = t.run();
            let audit = t.prefetch_audit().expect("audit was enabled");
            assert!(!audit.is_empty(), "{label} d{depth}: no plans recorded");

            let dataset = CtrDataset::new(CtrConfig::tiny(7));
            let mut checked = 0usize;
            let mut seen = HashSet::new();
            let mut audit_issued = 0u64;
            for a in &audit {
                // A target is planned at most once per worker in a
                // clean run (`planned_until` only advances): the dedup
                // rule has no second chance to double-fetch.
                assert!(
                    seen.insert((a.worker, a.target_iteration)),
                    "{label} d{depth}: worker {} iteration {} planned twice",
                    a.worker,
                    a.target_iteration,
                );
                // issued ∪ resident ∪ in-flight partitions the batch.
                let mut union: Vec<Key> = a
                    .issued
                    .iter()
                    .chain(&a.skipped_resident)
                    .chain(&a.skipped_inflight)
                    .copied()
                    .collect();
                union.sort_unstable();
                assert_eq!(
                    union, a.planned,
                    "{label} d{depth}: plan partition leaks or overlaps"
                );
                audit_issued += a.issued.len() as u64;
                // Exactness: only meaningful for targets the worker
                // actually reached before shutdown.
                if a.target_iteration >= t.worker_iterations(a.worker) {
                    continue;
                }
                let cursor = t.data_cursor_of(a.worker, a.target_iteration);
                let batch = dataset.train_batch(cursor, batch_size);
                assert_eq!(
                    a.planned,
                    batch.unique_keys(),
                    "{label} d{depth}: planned keys diverge from the batch \
                     worker {} reads at iteration {}",
                    a.worker,
                    a.target_iteration,
                );
                checked += 1;
            }
            assert!(
                checked as u64 >= depth,
                "{label} d{depth}: exactness checked on {checked} targets only"
            );

            // The prefetch ledger: every key a plan hands over is
            // eventually installed or cancelled; pulls are a subset of
            // hand-overs (outage skips and stranded orders never pull);
            // installs are a subset of pulls.
            let p = report.prefetch.expect("depth > 0 must report prefetch");
            assert_eq!(p.depth, depth);
            assert!(p.issued_keys > 0, "{label} d{depth}: nothing ever pulled");
            assert_eq!(
                audit_issued,
                p.installed_keys + p.cancelled_keys,
                "{label} d{depth}: prefetch ledger does not close"
            );
            assert!(p.issued_keys <= audit_issued);
            assert!(p.installed_keys <= p.issued_keys);
            // Cache side of the ledger: after the end-of-run flush every
            // prefetch-installed entry has surfaced as a hit or waste.
            assert_eq!(report.cache.prefetch_installs, p.installed_keys);
            assert_eq!(
                report.cache.prefetch_installs,
                report.cache.prefetch_hits + report.cache.prefetch_wasted,
                "{label} d{depth}: cache prefetch ledger does not close"
            );
        }
    }
}

/// Overlap does real work: at depth 4 the transfer time hidden behind
/// compute is positive, reads turn misses into prefetch hits, and the
/// simulated run finishes faster than the depth-0 run of the identical
/// configuration.
#[test]
fn lookahead_hides_transfer_time_and_speeds_up_the_run() {
    let mk = |depth: u64| {
        cached_config(SyncMode::Bsp, depth, 11).with_cache(0.6, PolicyKind::light_lfu())
    };
    let base = trainer_for(mk(0)).run();
    assert!(base.prefetch.is_none(), "depth 0 must not report prefetch");
    let pre = trainer_for(mk(4)).run();
    let p = pre.prefetch.expect("depth 4 must report prefetch");
    assert_eq!(pre.total_iterations, base.total_iterations);
    assert!(p.hidden_ns() > 0, "no transfer time was hidden");
    assert!(pre.cache.prefetch_hits > 0, "prefetches never became hits");
    assert!(
        pre.total_sim_time < base.total_sim_time,
        "prefetch run ({}) not faster than demand-only run ({})",
        pre.total_sim_time,
        base.total_sim_time,
    );
}

/// `lookahead_depth = 0` reproduces the legacy path byte-for-byte:
/// reports and traces are self-identical across runs, carry no
/// `prefetch` section and no `prefetcher` component — while depth 4
/// visibly engages both.
#[test]
fn depth_zero_is_byte_identical_to_legacy_path() {
    let run_traced = |depth: u64| {
        het::trace::start(vec![(
            "kind".to_string(),
            het::json::Json::Str("prefetch-identity".to_string()),
        )]);
        let report = trainer_for(cached_config(SyncMode::Bsp, depth, 3)).run();
        let log = het::trace::finish();
        (report.to_json().encode(), log.to_jsonl())
    };
    let (r0a, t0a) = run_traced(0);
    let (r0b, t0b) = run_traced(0);
    assert_eq!(r0a, r0b, "depth-0 reports diverged");
    assert_eq!(t0a, t0b, "depth-0 traces diverged");
    assert!(
        !r0a.contains("\"prefetch\""),
        "depth-0 report leaks prefetch"
    );
    assert!(
        !t0a.contains("prefetcher"),
        "depth-0 trace leaks prefetcher"
    );

    let (r4, t4) = run_traced(4);
    assert!(
        r4.contains("\"prefetch\""),
        "depth-4 report missing prefetch"
    );
    assert!(
        t4.contains("prefetcher"),
        "depth-4 trace missing prefetcher"
    );
}

/// Counter ↔ report reconciliation on a prefetch-enabled traced run:
/// the prefetcher's trace counters match the report summary, the cache
/// counters match the merged cache stats, and prefetch hits plus demand
/// hits account for every hit.
#[test]
fn trace_counters_reconcile_with_prefetch_report() {
    het::trace::start(vec![(
        "kind".to_string(),
        het::json::Json::Str("prefetch-reconcile".to_string()),
    )]);
    let report = trainer_for(cached_config(SyncMode::Bsp, 4, 5)).run();
    let log = het::trace::finish();
    let p = report.prefetch.expect("depth 4 must report prefetch");
    assert!(p.issued_keys > 0);
    assert_eq!(log.counter("prefetcher", "issued_keys"), p.issued_keys);
    assert_eq!(
        log.counter("cache", "prefetch_installs"),
        report.cache.prefetch_installs
    );
    assert_eq!(
        log.counter("cache", "prefetch_hits"),
        report.cache.prefetch_hits
    );
    assert_eq!(
        log.counter("cache", "prefetch_wasted"),
        report.cache.prefetch_wasted
    );
    // Every hit is either a prefetch hit or a demand hit.
    assert_eq!(log.counter("cache", "hits"), report.cache.hits);
    assert!(report.cache.prefetch_hits > 0);
    assert!(report.cache.prefetch_hits <= report.cache.hits);
}

/// Fault routing: worker crashes and shard outages cancel the affected
/// prefetches (queued and in flight) instead of installing stale or
/// doomed pulls — and both ledgers still close afterwards.
#[test]
fn faults_cancel_prefetches_and_ledger_still_closes() {
    let clean = trainer_for(cached_config(SyncMode::Asp, 4, 9)).run();
    let horizon = SimDuration::from_secs_f64(clean.total_sim_time.as_secs_f64() * 0.8);
    let mut config = cached_config(SyncMode::Asp, 4, 9);
    config.faults.enabled = true;
    config.faults.checkpoint_every = 20;
    config.faults.spec.worker_crashes = 2;
    config.faults.spec.shard_outages = 1;
    config.faults.spec.horizon = horizon;
    let mut t = trainer_for(config);
    t.enable_prefetch_audit();
    let report = t.run();
    assert!(
        report.faults.worker_crashes > 0 || report.faults.shard_failovers > 0,
        "fault schedule never fired"
    );
    let p = report.prefetch.expect("depth 4 must report prefetch");
    assert!(p.cancelled_keys > 0, "faults cancelled nothing");
    let audit_issued: u64 = t
        .prefetch_audit()
        .expect("audit was enabled")
        .iter()
        .map(|a| a.issued.len() as u64)
        .sum();
    assert_eq!(
        audit_issued,
        p.installed_keys + p.cancelled_keys,
        "faulted prefetch ledger does not close"
    );
    assert_eq!(
        report.cache.prefetch_installs,
        report.cache.prefetch_hits + report.cache.prefetch_wasted,
        "faulted cache prefetch ledger does not close"
    );
}
